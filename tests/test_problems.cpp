// Graph container, generators, Gset I/O, coloring, knapsack, partitioning.
#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "util/assert.hpp"
#include "problems/coloring.hpp"
#include "problems/generators.hpp"
#include "problems/graph.hpp"
#include "problems/gset_io.hpp"
#include "problems/knapsack.hpp"
#include "problems/partition.hpp"

namespace {

using namespace fecim::problems;

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(2, 3, -1.0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.total_abs_weight(), 3.0);
}

TEST(Graph, ParallelEdgesMerge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.5);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 3.5);
}

TEST(Graph, ManyParallelEdgesMergeViaHashIndex) {
  // 40k inserts over 200 distinct pairs: instant with the (u,v) hash slot
  // index, minutes with the seed's O(m) merge scan.  Adjacency queries stay
  // coherent with merged weights.
  Graph g(201);
  for (int repeat = 0; repeat < 200; ++repeat)
    for (std::uint32_t v = 1; v <= 200; ++v)
      g.add_edge(0, v, 0.5);
  EXPECT_EQ(g.num_edges(), 200u);
  EXPECT_EQ(g.degree(0), 200u);
  for (std::uint32_t v = 1; v <= 200; ++v) {
    EXPECT_TRUE(g.has_edge(v, 0));
    EXPECT_DOUBLE_EQ(g.edge_weight(0, v), 100.0);
  }
}

TEST(Graph, RejectsSelfLoops) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), fecim::contract_error);
}

TEST(Graph, AdjacencyConsistent) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(0, 3, 3.0);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  double sum = 0.0;
  for (const double w : g.neighbor_weights(0)) sum += w;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(Graph, BipartiteDetection) {
  Graph even_cycle(4);
  for (std::uint32_t i = 0; i < 4; ++i) even_cycle.add_edge(i, (i + 1) % 4);
  EXPECT_TRUE(even_cycle.is_bipartite());

  Graph odd_cycle(5);
  for (std::uint32_t i = 0; i < 5; ++i) odd_cycle.add_edge(i, (i + 1) % 5);
  EXPECT_FALSE(odd_cycle.is_bipartite());
}

TEST(Generators, RandomGraphHitsTargetDensity) {
  const auto g = random_graph(500, 12.0, WeightScheme::kUnit, 42);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_EQ(g.num_edges(), 3000u);
  EXPECT_NEAR(g.average_degree(), 12.0, 0.01);
  for (const auto& e : g.edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(Generators, RandomGraphDeterministicPerSeed) {
  const auto a = random_graph(100, 6.0, WeightScheme::kPlusMinusOne, 7);
  const auto b = random_graph(100, 6.0, WeightScheme::kPlusMinusOne, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].u, b.edges()[i].u);
    EXPECT_EQ(a.edges()[i].v, b.edges()[i].v);
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight);
  }
}

TEST(Generators, PlusMinusWeightsAreBalanced) {
  const auto g = random_graph(400, 20.0, WeightScheme::kPlusMinusOne, 3);
  int positive = 0;
  for (const auto& e : g.edges()) positive += e.weight > 0;
  EXPECT_NEAR(positive, static_cast<int>(g.num_edges()) / 2,
              static_cast<int>(g.num_edges()) / 8);
}

TEST(Generators, RegularGraphHasUniformDegree) {
  const auto g = regular_graph(60, 4, WeightScheme::kUnit, 5);
  for (std::uint32_t v = 0; v < 60; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, ToroidalGridStructure) {
  const auto g = toroidal_grid(6, 8, WeightScheme::kUnit, 1);
  EXPECT_EQ(g.num_vertices(), 48u);
  EXPECT_EQ(g.num_edges(), 96u);  // 2 edges per vertex
  for (std::uint32_t v = 0; v < 48; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.is_bipartite());  // both dimensions even
}

TEST(Generators, OddToroidalGridIsNotBipartite) {
  EXPECT_FALSE(toroidal_grid(5, 7, WeightScheme::kUnit, 1).is_bipartite());
}

TEST(Generators, GsetLikeFamilies) {
  EXPECT_EQ(gset_like_instance(800, 1).num_vertices(), 800u);
  EXPECT_EQ(gset_like_instance(1000, 1).num_vertices(), 1000u);
  EXPECT_EQ(gset_like_instance(2000, 1).num_vertices(), 2000u);
  const auto toroidal = gset_like_instance(3000, 1);
  EXPECT_EQ(toroidal.num_vertices(), 3000u);
  EXPECT_TRUE(toroidal.is_bipartite());
}

TEST(GsetIo, RoundTrip) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(3, 4, -2.0);
  std::stringstream buffer;
  write_gset(g, buffer);
  const auto parsed = read_gset(buffer);
  EXPECT_EQ(parsed.num_vertices(), 5u);
  EXPECT_EQ(parsed.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(parsed.edge_weight(3, 4), -2.0);
}

TEST(GsetIo, ParsesCanonicalFormat) {
  std::stringstream in("3 2\n1 2 1\n2 3 -1\n");
  const auto g = read_gset(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), -1.0);
}

TEST(GsetIo, RejectsMalformedInput) {
  std::stringstream missing_header("abc");
  EXPECT_THROW(read_gset(missing_header), fecim::contract_error);
  std::stringstream truncated("3 2\n1 2 1\n");
  EXPECT_THROW(read_gset(truncated), fecim::contract_error);
  std::stringstream out_of_range("2 1\n1 5 1\n");
  EXPECT_THROW(read_gset(out_of_range), fecim::contract_error);
}

TEST(Coloring, QuboZeroIffValid) {
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  const auto encoding = coloring_to_qubo(triangle, 3);

  // Valid 3-coloring: colors 0,1,2 one-hot.
  std::vector<std::uint8_t> valid(9, 0);
  valid[0 * 3 + 0] = 1;
  valid[1 * 3 + 1] = 1;
  valid[2 * 3 + 2] = 1;
  EXPECT_NEAR(encoding.qubo.value(valid), 0.0, 1e-12);
  EXPECT_EQ(coloring_violations(triangle, encoding, valid), 0u);

  // Monochromatic edge.
  std::vector<std::uint8_t> invalid(9, 0);
  invalid[0 * 3 + 0] = 1;
  invalid[1 * 3 + 0] = 1;
  invalid[2 * 3 + 2] = 1;
  EXPECT_GT(encoding.qubo.value(invalid), 0.5);
  EXPECT_EQ(coloring_violations(triangle, encoding, invalid), 1u);
}

TEST(Coloring, PenalizesNonOneHot) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto encoding = coloring_to_qubo(g, 2);
  std::vector<std::uint8_t> empty(4, 0);  // vertex with no color
  EXPECT_GT(encoding.qubo.value(empty), 0.5);
  EXPECT_EQ(coloring_violations(g, encoding, empty), 2u);
}

TEST(Coloring, DecodeMarksInvalidVertices) {
  Graph g(1);
  // Single vertex graph needs >= 1 vertex; build 2 to allow an edge-free case.
  Graph g2(2);
  const auto encoding = coloring_to_qubo(g2, 2);
  std::vector<std::uint8_t> both(4, 0);
  both[0] = 1;
  both[1] = 1;  // vertex 0 has two colors
  both[2] = 1;
  const auto colors = decode_coloring(encoding, both);
  EXPECT_EQ(colors[0], 2u);  // invalid marker == num_colors
  EXPECT_EQ(colors[1], 0u);
}

TEST(Coloring, DecodeMarksZeroHotVertices) {
  // The invalid marker (== num_colors) must cover the zero-hot case too,
  // not only multi-hot groups.
  Graph g(3);
  const auto encoding = coloring_to_qubo(g, 3);
  std::vector<std::uint8_t> x(9, 0);
  x[0 * 3 + 1] = 1;  // vertex 0: single-hot, color 1
  // vertex 1: zero-hot
  x[2 * 3 + 0] = 1;
  x[2 * 3 + 2] = 1;  // vertex 2: double-hot
  const auto colors = decode_coloring(encoding, x);
  EXPECT_EQ(colors[0], 1u);
  EXPECT_EQ(colors[1], 3u);  // invalid marker == num_colors
  EXPECT_EQ(colors[2], 3u);
  // Each marked vertex counts as exactly one violation (edge-free graph).
  EXPECT_EQ(coloring_violations(g, encoding, x), 2u);
}

TEST(Coloring, GreedyIsValid) {
  const auto g = random_graph(80, 6.0, WeightScheme::kUnit, 9);
  const auto colors = greedy_coloring(g);
  for (const auto& e : g.edges()) EXPECT_NE(colors[e.u], colors[e.v]);
}

TEST(Knapsack, EncodingRecoversOptimum) {
  // Items: values 10, 7, 4; weights 5, 4, 3; capacity 7 -> best = 11 (7+4).
  const KnapsackInstance instance{{{10, 5}, {7, 4}, {4, 3}}, 7};
  EXPECT_DOUBLE_EQ(knapsack_optimal_value(instance), 11.0);

  const auto encoding = knapsack_to_qubo(instance);
  const auto ising = encoding.qubo.to_ising();
  const auto [spins, energy] = ising.brute_force_ground_state();
  const auto x = fecim::ising::binary_from_spins(spins);
  const auto solution = decode_knapsack(instance, encoding, x);
  EXPECT_TRUE(solution.feasible);
  EXPECT_DOUBLE_EQ(solution.value, 11.0);
  // At the optimum with matching slack, H = -value.
  EXPECT_NEAR(energy, -11.0, 1e-9);
}

TEST(Knapsack, OptimalValueFloorsFractionalCapacity) {
  // --capacity 37.5 style inputs used to die on a contract check; integral
  // weights cannot use the fraction, so flooring preserves the optimum.
  const KnapsackInstance fractional{{{10, 5}, {7, 4}, {4, 3}}, 7.5};
  const KnapsackInstance floored{{{10, 5}, {7, 4}, {4, 3}}, 7.0};
  EXPECT_DOUBLE_EQ(knapsack_optimal_value(fractional),
                   knapsack_optimal_value(floored));
  EXPECT_DOUBLE_EQ(knapsack_optimal_value(fractional), 11.0);
}

TEST(Knapsack, OptimalValueFallsBackToGreedyForFractionalWeights) {
  const KnapsackInstance instance{{{10, 2.5}, {7, 4}, {4, 3}}, 7};
  EXPECT_NO_THROW(knapsack_optimal_value(instance));
  EXPECT_DOUBLE_EQ(knapsack_optimal_value(instance),
                   knapsack_greedy_value(instance));
  // The greedy bound is itself feasible, so it never exceeds total value.
  EXPECT_LE(knapsack_greedy_value(instance), 21.0);
}

TEST(Knapsack, OptimalValueCapsDpTableSize) {
  // A file-supplied capacity like 1e15 must degrade to the greedy bound,
  // not abort on a petabyte DP allocation.
  const KnapsackInstance huge{{{1, 1}}, 1e15};
  EXPECT_NO_THROW(knapsack_optimal_value(huge));
  EXPECT_DOUBLE_EQ(knapsack_optimal_value(huge), knapsack_greedy_value(huge));
  EXPECT_DOUBLE_EQ(knapsack_optimal_value(huge), 1.0);
}

TEST(Knapsack, SlackCoversCapacityExactly) {
  const KnapsackInstance instance{{{1, 1}}, 13};
  const auto encoding = knapsack_to_qubo(instance);
  double slack_total = 0.0;
  for (const double c : encoding.slack_coefficients) slack_total += c;
  EXPECT_DOUBLE_EQ(slack_total, 13.0);
}

TEST(Knapsack, InfeasibleSelectionsDecodeAsInfeasible) {
  const KnapsackInstance instance{{{5, 6}, {5, 6}}, 7};
  const auto encoding = knapsack_to_qubo(instance);
  std::vector<std::uint8_t> x(2 + encoding.num_slack_bits, 0);
  x[0] = 1;
  x[1] = 1;  // weight 12 > 7
  const auto solution = decode_knapsack(instance, encoding, x);
  EXPECT_FALSE(solution.feasible);
}

TEST(Knapsack, SlackRoundTripFeasibility) {
  // Any feasible selection plus the greedy (largest-first) slack encoding of
  // its residual capacity reaches the penalty minimum: H == -value.  The
  // decode strips the slack bits and reproduces the selection.
  const KnapsackInstance instance{{{10, 5}, {7, 4}, {4, 3}, {6, 5}}, 11};
  const auto encoding = knapsack_to_qubo(instance);

  const std::vector<std::uint8_t> selection{1, 0, 1, 0};  // weight 8, value 14
  double weight = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < selection.size(); ++i) {
    if (!selection[i]) continue;
    weight += instance.items[i].weight;
    value += instance.items[i].value;
  }
  ASSERT_LE(weight, instance.capacity);

  // Greedy largest-first representation: the coefficients 1,2,4,...,residual
  // cover every integer in [0, capacity], so the residual always encodes.
  std::vector<std::uint8_t> x(selection);
  x.resize(encoding.num_items + encoding.num_slack_bits, 0);
  double residual = instance.capacity - weight;
  for (std::size_t j = encoding.num_slack_bits; j-- > 0;) {
    const double c = encoding.slack_coefficients[j];
    if (c <= residual + 1e-9) {
      x[encoding.num_items + j] = 1;
      residual -= c;
    }
  }
  EXPECT_NEAR(residual, 0.0, 1e-9);

  EXPECT_NEAR(encoding.qubo.value(x), -value, 1e-9);
  const auto solution = decode_knapsack(instance, encoding, x);
  EXPECT_TRUE(solution.feasible);
  EXPECT_DOUBLE_EQ(solution.value, value);
  EXPECT_DOUBLE_EQ(solution.weight, weight);
  ASSERT_EQ(solution.selection.size(), selection.size());
  for (std::size_t i = 0; i < selection.size(); ++i)
    EXPECT_EQ(solution.selection[i], selection[i]);
}

TEST(Partition, IsingEnergyIsSquaredImbalance) {
  const std::vector<double> numbers{3, 1, 1, 2, 2, 1};
  const auto model = partition_to_ising(numbers);
  fecim::util::Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const auto spins = fecim::ising::random_spins(numbers.size(), rng);
    const double imbalance = partition_imbalance(numbers, spins);
    EXPECT_NEAR(model.energy(spins), imbalance * imbalance, 1e-9);
  }
}

TEST(Partition, PerfectPartitionReachesZero) {
  const std::vector<double> numbers{3, 1, 1, 2, 2, 1};  // total 10 -> 5|5
  const auto model = partition_to_ising(numbers);
  const auto [spins, energy] = model.brute_force_ground_state();
  EXPECT_NEAR(energy, 0.0, 1e-9);
  EXPECT_NEAR(partition_imbalance(numbers, spins), 0.0, 1e-9);
}

TEST(Partition, GreedyBoundsOptimal) {
  const std::vector<double> numbers{8, 7, 6, 5, 4};
  const auto model = partition_to_ising(numbers);
  const auto [spins, energy] = model.brute_force_ground_state();
  EXPECT_LE(std::sqrt(std::max(0.0, energy)),
            greedy_partition_imbalance(numbers) + 1e-9);
}

}  // namespace
