// QUBO model tests: evaluation, exact Ising<->QUBO equivalence both ways.
#include <gtest/gtest.h>

#include <cmath>

#include "ising/qubo.hpp"
#include "util/rng.hpp"

namespace {

using fecim::ising::BinaryVector;
using fecim::ising::QuboModel;
using fecim::linalg::CsrMatrix;

QuboModel random_qubo(std::size_t n, fecim::util::Rng& rng) {
  CsrMatrix::Builder builder(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i == j || rng.bernoulli(0.3))
        builder.add(i, j, rng.uniform(-2.0, 2.0));
  return QuboModel(builder.build(), rng.uniform(-1.0, 1.0));
}

BinaryVector random_binary(std::size_t n, fecim::util::Rng& rng) {
  BinaryVector x(n);
  for (auto& v : x) v = rng.bernoulli(0.5) ? 1 : 0;
  return x;
}

TEST(Qubo, ValueMatchesManual) {
  CsrMatrix::Builder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 1, -3.0);
  const QuboModel qubo(builder.build(), 0.5);
  EXPECT_DOUBLE_EQ(qubo.value(BinaryVector{1, 1}), 1.0 + 2.0 - 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(qubo.value(BinaryVector{1, 0}), 1.5);
  EXPECT_DOUBLE_EQ(qubo.value(BinaryVector{0, 0}), 0.5);
}

TEST(Qubo, SpinBinaryMappingIsInverse) {
  fecim::util::Rng rng(1);
  const auto x = random_binary(32, rng);
  const auto spins = fecim::ising::spins_from_binary(x);
  EXPECT_EQ(fecim::ising::binary_from_spins(spins), x);
}

TEST(Qubo, MappingConvention) {
  // sigma = 1 - 2x: x=0 -> +1, x=1 -> -1.
  const auto spins = fecim::ising::spins_from_binary(BinaryVector{0, 1});
  EXPECT_EQ(spins[0], 1);
  EXPECT_EQ(spins[1], -1);
}

class QuboIsingEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuboIsingEquivalence, ToIsingPreservesObjective) {
  fecim::util::Rng rng(GetParam());
  const std::size_t n = 3 + GetParam() * 4;
  const auto qubo = random_qubo(n, rng);
  const auto ising = qubo.to_ising();
  for (int trial = 0; trial < 60; ++trial) {
    const auto x = random_binary(n, rng);
    const auto spins = fecim::ising::spins_from_binary(x);
    EXPECT_NEAR(qubo.value(x), ising.energy(spins), 1e-9);
  }
}

TEST_P(QuboIsingEquivalence, FromIsingPreservesObjective) {
  fecim::util::Rng rng(GetParam() + 50);
  const std::size_t n = 3 + GetParam() * 4;
  const auto qubo = random_qubo(n, rng);
  const auto ising = qubo.to_ising();
  const auto qubo_back = fecim::ising::qubo_from_ising(ising);
  for (int trial = 0; trial < 60; ++trial) {
    const auto x = random_binary(n, rng);
    EXPECT_NEAR(qubo.value(x), qubo_back.value(x), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuboIsingEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(Qubo, GroundStatesAgree) {
  fecim::util::Rng rng(99);
  const auto qubo = random_qubo(10, rng);
  const auto ising = qubo.to_ising();

  double best_qubo = 1e100;
  for (std::uint32_t bits = 0; bits < (1u << 10); ++bits) {
    BinaryVector x(10);
    for (std::size_t i = 0; i < 10; ++i) x[i] = (bits >> i) & 1;
    best_qubo = std::min(best_qubo, qubo.value(x));
  }
  const auto [spins, best_ising] = ising.brute_force_ground_state();
  EXPECT_NEAR(best_qubo, best_ising, 1e-9);
}

TEST(Qubo, DiagonalOnlyActsLinearly) {
  // x_i^2 == x_i: a diagonal QUBO is a sum of independent choices.
  CsrMatrix::Builder builder(3, 3);
  builder.add(0, 0, -1.0);
  builder.add(1, 1, 2.0);
  builder.add(2, 2, -3.0);
  const QuboModel qubo(builder.build());
  const auto ising = qubo.to_ising();
  const auto [spins, energy] = ising.brute_force_ground_state();
  EXPECT_NEAR(energy, -4.0, 1e-12);  // pick items 0 and 2
  const auto x = fecim::ising::binary_from_spins(spins);
  EXPECT_EQ(x[0], 1);
  EXPECT_EQ(x[1], 0);
  EXPECT_EQ(x[2], 1);
}

}  // namespace
