// FeFET retention / read-disturb model.
#include <gtest/gtest.h>

#include <cmath>

#include "device/retention.hpp"
#include "util/assert.hpp"

namespace {

using fecim::device::RetentionModel;
using fecim::device::RetentionParams;

TEST(Retention, FreshCellIsFullyPolarized) {
  const RetentionModel model;
  EXPECT_DOUBLE_EQ(model.polarization_fraction(0.0, 0), 1.0);
}

TEST(Retention, LogarithmicDecayShape) {
  const RetentionModel model({0.02, 1.0, 0.0, 0.5});
  // One decade of time costs one decay_per_decade step.
  const double after_10s = model.polarization_fraction(10.0);
  const double after_100s = model.polarization_fraction(100.0);
  EXPECT_NEAR(after_10s - after_100s, 0.02, 2e-3);
  EXPECT_LT(after_100s, after_10s);
}

TEST(Retention, MonotoneInTimeAndReads) {
  const RetentionModel model({0.02, 1.0, 1e-7, 0.5});
  double previous = 1.1;
  for (const double t : {0.0, 1.0, 1e2, 1e4, 1e6}) {
    const double f = model.polarization_fraction(t, 0);
    EXPECT_LT(f, previous);
    previous = f;
  }
  EXPECT_LT(model.polarization_fraction(1.0, 1000000),
            model.polarization_fraction(1.0, 0));
}

TEST(Retention, ClampsAtZero) {
  const RetentionModel model({0.5, 1.0, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(model.polarization_fraction(1e30), 0.0);
}

TEST(Retention, RefreshIntervalHitsThreshold) {
  const RetentionParams params{0.05, 1.0, 0.0, 0.8};
  const RetentionModel model(params);
  const double interval = model.seconds_until_refresh(0.0);
  ASSERT_TRUE(std::isfinite(interval));
  EXPECT_NEAR(model.polarization_fraction(interval), 0.8, 1e-6);
}

TEST(Retention, ReadRateShortensRefreshInterval) {
  const RetentionModel model({0.02, 1.0, 1e-8, 0.9});
  const double idle = model.seconds_until_refresh(0.0);
  const double busy = model.seconds_until_refresh(1e6);
  EXPECT_LT(busy, idle);
}

TEST(Retention, PerfectDeviceNeverRefreshes) {
  const RetentionModel model({0.0, 1.0, 0.0, 0.5});
  EXPECT_EQ(model.refreshes_needed(1e12, 1e9), 0u);
}

TEST(Retention, RefreshCountOverCampaign) {
  const RetentionParams params{0.05, 1.0, 0.0, 0.8};
  const RetentionModel model(params);
  const double interval = model.seconds_until_refresh(0.0);
  EXPECT_EQ(model.refreshes_needed(interval * 3.5, 0.0), 3u);
  EXPECT_EQ(model.refreshes_needed(interval * 0.5, 0.0), 0u);
}

TEST(Retention, AnnealingRunOutlivesRetention) {
  // A 3000-node run (5.5 ms, ~3.2M reads/s per active column group) must
  // not need a mid-run refresh with default retention.
  const RetentionModel model;
  EXPECT_EQ(model.refreshes_needed(5.5e-3, 3.2e6), 0u);
}

TEST(Retention, ZeroReadRateWithPureReadDisturbNeverRefreshes) {
  // Decay-free device whose only loss mechanism is read disturb: at zero
  // reads per second nothing ever degrades, so the refresh interval must be
  // infinite instead of the bisection looping or dividing by zero.
  const RetentionModel model({0.0, 1.0, 1e-9, 0.5});
  EXPECT_TRUE(std::isinf(model.seconds_until_refresh(0.0)));
  EXPECT_EQ(model.refreshes_needed(1e12, 0.0), 0u);
  // With reads flowing the same device does wear out.
  EXPECT_TRUE(std::isfinite(model.seconds_until_refresh(1e6)));
}

TEST(Retention, ExactRefreshBoundary) {
  // A campaign exactly as long as the refresh interval needs no refresh
  // (the margin reaches the threshold as the campaign ends); any longer
  // needs one.  Pins the >= comparison in refreshes_needed.
  const RetentionModel model({0.05, 1.0, 0.0, 0.8});
  const double interval = model.seconds_until_refresh(0.0);
  ASSERT_TRUE(std::isfinite(interval));
  EXPECT_EQ(model.refreshes_needed(interval, 0.0), 0u);
  EXPECT_EQ(model.refreshes_needed(interval * 1.001, 0.0), 1u);
  EXPECT_EQ(model.refreshes_needed(interval * 2.001, 0.0), 2u);
}

TEST(Retention, ExtremeElapsedStaysClamped) {
  // Near-overflow elapsed times and read counts must saturate at 0, not go
  // negative or NaN -- cost models feed campaign-scale numbers in here.
  const RetentionModel model;
  const double huge = 1e300;
  EXPECT_DOUBLE_EQ(model.polarization_fraction(huge), 0.0);
  EXPECT_DOUBLE_EQ(model.memory_window_fraction(huge), 0.0);
  const std::uint64_t max_reads = ~std::uint64_t{0};
  EXPECT_DOUBLE_EQ(model.polarization_fraction(0.0, max_reads), 0.0);
  EXPECT_DOUBLE_EQ(model.polarization_fraction(huge, max_reads), 0.0);
}

TEST(Retention, NegativeInputsViolateContracts) {
  const RetentionModel model;
  EXPECT_THROW(model.polarization_fraction(-1.0), fecim::contract_error);
  EXPECT_THROW(model.seconds_until_refresh(-1.0), fecim::contract_error);
  EXPECT_THROW(model.refreshes_needed(-1.0, 0.0), fecim::contract_error);
}

TEST(Retention, ValidatesParams) {
  EXPECT_THROW(RetentionModel({-0.1, 1.0, 0.0, 0.5}), fecim::contract_error);
  EXPECT_THROW(RetentionModel({0.02, 0.0, 0.0, 0.5}), fecim::contract_error);
  EXPECT_THROW(RetentionModel({0.02, 1.0, 0.0, 1.5}), fecim::contract_error);
}

}  // namespace
