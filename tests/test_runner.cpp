// Campaign runner: instance bundling, statistics, parallel determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"

namespace {

using namespace fecim;

core::MaxcutInstance small_instance(std::uint64_t seed) {
  return core::make_maxcut_instance(
      "test",
      problems::random_graph(48, 6.0, problems::WeightScheme::kUnit, seed),
      32, seed);
}

TEST(Runner, InstanceBundleIsConsistent) {
  const auto instance = small_instance(1);
  EXPECT_EQ(instance.graph->num_vertices(), 48u);
  EXPECT_EQ(instance.model->num_spins(), 48u);
  EXPECT_GT(instance.reference_cut, 0.0);
  EXPECT_LE(instance.reference_cut, instance.graph->total_abs_weight());
}

TEST(Runner, ToroidalReferenceIsCertified) {
  const auto instance = core::make_maxcut_instance(
      "torus",
      problems::toroidal_grid(6, 8, problems::WeightScheme::kUnit, 2), 1);
  EXPECT_DOUBLE_EQ(instance.reference_cut, 96.0);  // every edge cut
}

TEST(Runner, CampaignAggregatesRuns) {
  const auto instance = small_instance(3);
  core::StandardSetup setup;
  setup.iterations = 400;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, instance.model, setup);
  core::CampaignConfig config;
  config.runs = 8;
  const auto result = core::run_maxcut_campaign(*annealer, instance, config);
  EXPECT_EQ(result.runs, 8u);
  EXPECT_EQ(result.objective.count(), 8u);
  EXPECT_GT(result.objective.mean(), 0.0);
  EXPECT_LE(result.normalized.max(), 1.0 + 1e-9);
  EXPECT_GE(result.success_rate, 0.0);
  EXPECT_LE(result.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(result.feasible_rate, 1.0);  // every bipartition is a cut
  EXPECT_EQ(result.per_run.size(), 8u);
  ASSERT_LT(result.best_run, result.per_run.size());
  EXPECT_DOUBLE_EQ(result.per_run[result.best_run].solution.objective,
                   result.objective.max());
  EXPECT_EQ(result.total_ledger.iterations, 8u * 400u);
  EXPECT_GT(result.energy.mean(), 0.0);
  EXPECT_GT(result.time.mean(), 0.0);
}

TEST(Runner, ThreadCountDoesNotChangeResults) {
  const auto instance = small_instance(4);
  core::StandardSetup setup;
  setup.iterations = 200;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, instance.model, setup);
  core::CampaignConfig serial;
  serial.runs = 6;
  serial.threads = 1;
  core::CampaignConfig parallel = serial;
  parallel.threads = 4;
  const auto a = core::run_maxcut_campaign(*annealer, instance, serial);
  const auto b = core::run_maxcut_campaign(*annealer, instance, parallel);
  EXPECT_DOUBLE_EQ(a.objective.mean(), b.objective.mean());
  EXPECT_DOUBLE_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.total_ledger.adc_conversions, b.total_ledger.adc_conversions);
}

TEST(Runner, SuccessThresholdIsRespected) {
  const auto instance = small_instance(5);
  core::StandardSetup setup;
  setup.iterations = 600;
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, instance.model, setup);
  core::CampaignConfig lenient;
  lenient.runs = 6;
  lenient.success_threshold = 0.05;  // trivially reachable
  core::CampaignConfig impossible = lenient;
  impossible.success_threshold = 1.01;  // beyond the reference
  EXPECT_DOUBLE_EQ(
      core::run_maxcut_campaign(*annealer, instance, lenient).success_rate,
      1.0);
  EXPECT_DOUBLE_EQ(
      core::run_maxcut_campaign(*annealer, instance, impossible).success_rate,
      0.0);
}

TEST(Runner, EnergySplitsSumToTotal) {
  const auto instance = small_instance(6);
  core::StandardSetup setup;
  setup.iterations = 100;
  const auto baseline =
      core::make_annealer(core::AnnealerKind::kCimFpga, instance.model, setup);
  core::CampaignConfig config;
  config.runs = 3;
  const auto result = core::run_maxcut_campaign(*baseline, instance, config);
  // ADC + e^x dominate; they must not exceed the total.
  EXPECT_LE(result.adc_energy.mean() + result.exp_energy.mean(),
            result.energy.mean() + 1e-18);
  EXPECT_GT(result.exp_energy.mean(), 0.0);
}

}  // namespace
