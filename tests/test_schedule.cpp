// Annealing schedules: the tunable-BG ladder and the classic baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "core/acceptance.hpp"
#include "core/schedule.hpp"

namespace {

using fecim::core::BgAnnealingSchedule;
using fecim::core::ClassicSchedule;
using Direction = fecim::core::BgAnnealingSchedule::Direction;

TEST(BgSchedule, RampUpStartsLowEndsHigh) {
  BgAnnealingSchedule schedule({{}, 710, {}, Direction::kRampUp});
  EXPECT_DOUBLE_EQ(schedule.at(0).vbg, 0.0);
  EXPECT_NEAR(schedule.at(709).vbg, 0.7, 1e-12);
  EXPECT_NEAR(schedule.at(0).factor, 0.0, 0.02);
  EXPECT_NEAR(schedule.at(709).factor, 1.0, 1e-9);
}

TEST(BgSchedule, PaperLiteralDescendsAndParksAtZero) {
  BgAnnealingSchedule schedule({{}, 710, {}, Direction::kPaperLiteral});
  EXPECT_NEAR(schedule.at(0).vbg, 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(schedule.at(709).vbg, 0.0);
  // "Once V_BG reaches 0 V, it remains at zero".
  EXPECT_DOUBLE_EQ(schedule.at(100000).vbg, 0.0);
}

TEST(BgSchedule, VoltagesOnDacGrid) {
  BgAnnealingSchedule schedule({{}, 1000, {}, Direction::kRampUp});
  for (std::size_t it = 0; it < 1000; it += 13) {
    const double vbg = schedule.at(it).vbg;
    const double steps = vbg / 0.01;
    EXPECT_NEAR(steps, std::round(steps), 1e-9) << "vbg=" << vbg;
  }
}

TEST(BgSchedule, MonotoneInIteration) {
  BgAnnealingSchedule schedule({{}, 5000, {}, Direction::kRampUp});
  double previous = -1.0;
  for (std::size_t it = 0; it < 5000; ++it) {
    const double vbg = schedule.at(it).vbg;
    EXPECT_GE(vbg, previous - 1e-12);
    previous = vbg;
  }
}

TEST(BgSchedule, HoldsLevelsForLongBudgets) {
  // Paper: "T decreases only after a pre-set number of iterations."
  BgAnnealingSchedule schedule({{}, 7100, {}, Direction::kRampUp});
  EXPECT_EQ(schedule.hold_iterations(), 100u);
  EXPECT_DOUBLE_EQ(schedule.at(0).vbg, schedule.at(99).vbg);
  EXPECT_NE(schedule.at(99).vbg, schedule.at(100).vbg);
}

TEST(BgSchedule, ShortBudgetsSkipLevels) {
  BgAnnealingSchedule schedule({{}, 10, {}, Direction::kRampUp});
  EXPECT_DOUBLE_EQ(schedule.at(0).vbg, 0.0);
  EXPECT_NEAR(schedule.at(9).vbg, 0.7, 0.08);  // reaches (close to) the top
}

TEST(BgSchedule, FactorConsistentWithTemperature) {
  BgAnnealingSchedule schedule({{}, 100, {}, Direction::kRampUp});
  for (std::size_t it = 0; it < 100; it += 7) {
    const auto point = schedule.at(it);
    EXPECT_NEAR(point.factor, schedule.factor()(point.temperature), 1e-12);
  }
}

TEST(ClassicSchedule, GeometricEndpoints) {
  ClassicSchedule schedule({100.0, 0.1, 1000, ClassicSchedule::Kind::kGeometric});
  EXPECT_DOUBLE_EQ(schedule.temperature(0), 100.0);
  EXPECT_NEAR(schedule.temperature(999), 0.1, 1e-9);
  EXPECT_NEAR(schedule.temperature(499), std::sqrt(100.0 * 0.1), 0.15);
}

TEST(ClassicSchedule, LinearEndpoints) {
  ClassicSchedule schedule({10.0, 2.0, 5, ClassicSchedule::Kind::kLinear});
  EXPECT_DOUBLE_EQ(schedule.temperature(0), 10.0);
  EXPECT_DOUBLE_EQ(schedule.temperature(4), 2.0);
  EXPECT_DOUBLE_EQ(schedule.temperature(2), 6.0);
}

TEST(ClassicSchedule, FixedDecayIgnoresBudget) {
  // The same decay rate regardless of total iterations: short budgets stay
  // hot -- the mechanism behind the baselines' small-budget failures.
  ClassicSchedule schedule(
      {100.0, 0.001, 700, ClassicSchedule::Kind::kFixedDecay, 0.999});
  EXPECT_NEAR(schedule.temperature(700), 100.0 * std::pow(0.999, 700), 1e-6);
  EXPECT_GT(schedule.temperature(700), 49.0);  // still ~half the start temp
  // ...but floors at t_end for long runs.
  EXPECT_DOUBLE_EQ(schedule.temperature(100000), 0.001);
}

TEST(ClassicSchedule, ValidatesConfig) {
  EXPECT_THROW(
      ClassicSchedule({0.0, 0.1, 10, ClassicSchedule::Kind::kGeometric}),
      fecim::contract_error);
  EXPECT_THROW(
      ClassicSchedule({1.0, 2.0, 10, ClassicSchedule::Kind::kGeometric}),
      fecim::contract_error);
}

TEST(Acceptance, FractionalRule) {
  fecim::core::FractionalAcceptance acceptance;
  fecim::util::Rng rng(1);
  // Downhill and zero are always accepted (Alg. 1 line 7).
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(acceptance.accept(-0.5, rng));
    EXPECT_TRUE(acceptance.accept(0.0, rng));
  }
  // E_inc >= 1 can never pass the rand(0,1) comparison.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(acceptance.accept(1.5, rng));
  // E_inc in (0,1): acceptance probability ~ 1 - E_inc.
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) accepted += acceptance.accept(0.3, rng);
  EXPECT_NEAR(accepted / 20000.0, 0.7, 0.02);
}

TEST(Acceptance, MetropolisRule) {
  fecim::core::MetropolisAcceptance acceptance;
  fecim::util::Rng rng(2);
  EXPECT_TRUE(acceptance.accept(-1.0, 1.0, rng).accepted);
  EXPECT_FALSE(acceptance.accept(-1.0, 1.0, rng).exp_evaluated);

  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto decision = acceptance.accept(1.0, 2.0, rng);
    EXPECT_TRUE(decision.exp_evaluated);
    accepted += decision.accepted;
  }
  EXPECT_NEAR(accepted / 20000.0, std::exp(-0.5), 0.02);

  // Zero temperature rejects all uphill moves.
  EXPECT_FALSE(acceptance.accept(0.1, 0.0, rng).accepted);
}

}  // namespace
