// Multi-process sharded campaigns (docs/sharding.md): record codec
// round-trips, torn-record detection on the stream decoder, bit-identity of
// the fork-based worker pool against the in-process pool for every worker
// count and regime (noisy, ideal, tiled, SB, warm-started), dead-worker
// recovery, retry inside a worker, and per-shard journal resume union.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/annealer_factory.hpp"
#include "core/run_journal.hpp"
#include "core/run_lifecycle.hpp"
#include "core/runner.hpp"
#include "core/shard_runner.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "util/assert.hpp"

namespace {

using namespace fecim;

core::ProblemInstance test_problem(std::size_t nodes = 24) {
  return problems::make_maxcut_problem(
      "shard-" + std::to_string(nodes),
      problems::random_graph(nodes, 5.0, problems::WeightScheme::kUnit, 11),
      16, 3);
}

std::unique_ptr<core::Annealer> test_annealer(
    const core::ProblemInstance& problem, std::size_t iterations = 200) {
  core::StandardSetup setup;
  setup.iterations = iterations;
  return core::make_annealer(core::AnnealerKind::kThisWork, problem.model,
                             setup);
}

/// Bit-identical record comparison -- the determinism contract is exact
/// equality, never "near".
void expect_records_equal(const core::RunRecord& a, const core::RunRecord& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_spins, b.best_spins);
  if (a.status == core::RunStatus::kOk) {
    EXPECT_EQ(a.solution.objective, b.solution.objective);
  } else {
    EXPECT_TRUE(std::isnan(a.solution.objective));
    EXPECT_TRUE(std::isnan(b.solution.objective));
  }
  EXPECT_EQ(a.solution.feasible, b.solution.feasible);
  EXPECT_EQ(a.solution.violations, b.solution.violations);
}

void expect_results_equal(const core::CampaignResult& a,
                          const core::CampaignResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.best_run, b.best_run);
  EXPECT_EQ(a.completed_rate, b.completed_rate);
  EXPECT_EQ(a.feasible_rate, b.feasible_rate);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.objective.count(), b.objective.count());
  if (!a.objective.empty()) {
    EXPECT_EQ(a.objective.mean(), b.objective.mean());
    EXPECT_EQ(a.objective.min(), b.objective.min());
    EXPECT_EQ(a.objective.max(), b.objective.max());
  }
  EXPECT_EQ(a.energy.count(), b.energy.count());
  if (!a.energy.empty()) EXPECT_EQ(a.energy.mean(), b.energy.mean());
  if (!a.time.empty()) EXPECT_EQ(a.time.mean(), b.time.mean());
  EXPECT_EQ(a.total_ledger.iterations, b.total_ledger.iterations);
  EXPECT_EQ(a.total_ledger.adc_conversions, b.total_ledger.adc_conversions);
  EXPECT_EQ(a.total_ledger.spin_updates, b.total_ledger.spin_updates);
  EXPECT_EQ(a.total_ledger.row_drives, b.total_ledger.row_drives);
  ASSERT_EQ(a.per_run.size(), b.per_run.size());
  for (std::size_t run = 0; run < a.per_run.size(); ++run)
    expect_records_equal(a.per_run[run], b.per_run[run]);
}

/// The sharded path must reproduce the in-process result bit for bit for
/// every worker count -- the tentpole invariant (PERF.md invariant 9).
void expect_sharded_bit_identical(const core::Annealer& annealer,
                                  const core::ProblemInstance& problem,
                                  core::CampaignConfig config) {
  config.workers = 0;
  const auto baseline = core::run_campaign(annealer, problem, config);
  for (std::size_t workers : {1u, 2u, 3u}) {
    config.workers = workers;
    const auto sharded = core::run_campaign(annealer, problem, config);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_results_equal(baseline, sharded);
  }
}

std::string temp_journal_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("fecim_shard_" + tag + ".journal"))
      .string();
}

void remove_journal_family(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  for (std::size_t k = 0; k < 8; ++k)
    std::filesystem::remove(core::shard_journal_path(path, k), ec);
}

core::JournalEntry sample_ok_entry() {
  core::JournalEntry entry;
  entry.run = 3;
  entry.record.seed = 0xDEADBEEFCAFEull;
  entry.record.status = core::RunStatus::kOk;
  entry.record.attempt = 2;
  entry.record.best_energy = -123.4567891234e-3;
  entry.record.solution.objective = 41.0 / 3.0;  // not exactly representable
  entry.record.solution.feasible = true;
  entry.record.solution.violations = 0.0;
  entry.record.best_spins = {ising::Spin{1}, ising::Spin{-1}, ising::Spin{-1},
                             ising::Spin{1}};
  entry.ledger.iterations = 200;
  entry.ledger.adc_conversions = 4800;
  entry.ledger.mux_slot_cycles = 600;
  entry.ledger.row_drives = 123;
  entry.ledger.column_drives = 456;
  entry.ledger.bg_dac_updates = 7;
  entry.ledger.exp_evaluations = 0;
  entry.ledger.spin_updates = 89;
  entry.ledger.crossbar_passes = 400;
  entry.ledger.tile_activations = 32;
  entry.ledger.partial_sum_updates = 16;
  return entry;
}

// ---------------------------------------------------------------------------
// Record codec (journal line format == shard wire format)
// ---------------------------------------------------------------------------

TEST(ShardCodec, OkEntryRoundTripsBitExactly) {
  const auto entry = sample_ok_entry();
  const std::string line = core::encode_journal_entry(entry);
  core::JournalEntry decoded;
  ASSERT_TRUE(core::decode_journal_entry(line, decoded));
  EXPECT_EQ(decoded.run, entry.run);
  expect_records_equal(decoded.record, entry.record);
  EXPECT_EQ(decoded.ledger.iterations, entry.ledger.iterations);
  EXPECT_EQ(decoded.ledger.adc_conversions, entry.ledger.adc_conversions);
  EXPECT_EQ(decoded.ledger.mux_slot_cycles, entry.ledger.mux_slot_cycles);
  EXPECT_EQ(decoded.ledger.row_drives, entry.ledger.row_drives);
  EXPECT_EQ(decoded.ledger.column_drives, entry.ledger.column_drives);
  EXPECT_EQ(decoded.ledger.bg_dac_updates, entry.ledger.bg_dac_updates);
  EXPECT_EQ(decoded.ledger.spin_updates, entry.ledger.spin_updates);
  EXPECT_EQ(decoded.ledger.crossbar_passes, entry.ledger.crossbar_passes);
  EXPECT_EQ(decoded.ledger.tile_activations, entry.ledger.tile_activations);
  EXPECT_EQ(decoded.ledger.partial_sum_updates,
            entry.ledger.partial_sum_updates);
}

TEST(ShardCodec, FailureStatusesRoundTripWithMessages) {
  for (auto status :
       {core::RunStatus::kFailed, core::RunStatus::kTimedOut,
        core::RunStatus::kCancelled}) {
    core::JournalEntry entry;
    entry.run = 1;
    entry.record.seed = 99;
    entry.record.status = status;
    entry.record.attempt = 1;
    entry.record.error = "message with spaces\tand a tab";
    entry.record.solution = core::failed_run_solution();
    core::JournalEntry decoded;
    ASSERT_TRUE(
        core::decode_journal_entry(core::encode_journal_entry(entry), decoded));
    EXPECT_EQ(decoded.run, entry.run);
    expect_records_equal(decoded.record, entry.record);
  }
}

TEST(ShardCodec, TruncatedLinesAreRejectedNotMisread) {
  // Every strict prefix of a valid line must fail to decode: a torn record
  // can never install as a shorter-but-plausible one.
  const std::string line = core::encode_journal_entry(sample_ok_entry());
  core::JournalEntry decoded;
  for (std::size_t len = 0; len < line.size(); ++len)
    EXPECT_FALSE(core::decode_journal_entry(line.substr(0, len), decoded))
        << "prefix of length " << len << " decoded";
}

TEST(ShardStreamDecoder, SplitsChunksAndHoldsTornTail) {
  const auto entry = sample_ok_entry();
  const std::string line = core::encode_journal_entry(entry);
  const std::string stream = line + "\n" + line.substr(0, line.size() / 2);

  core::RecordStreamDecoder decoder;
  std::vector<core::JournalEntry> out;
  // Feed byte by byte -- chunk boundaries must never matter.
  for (char c : stream) decoder.feed(&c, 1, out);
  ASSERT_EQ(out.size(), 1u);
  expect_records_equal(out[0].record, entry.record);
  EXPECT_TRUE(decoder.has_partial_line());  // the torn half stays buffered

  // Completing the second record drains the partial buffer.
  const std::string rest = line.substr(line.size() / 2) + "\n";
  decoder.feed(rest.data(), rest.size(), out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(decoder.has_partial_line());
  expect_records_equal(out[1].record, entry.record);
}

TEST(ShardStreamDecoder, NewlineTerminatedGarbageThrows) {
  // A complete line that fails to decode is wire corruption, not a torn
  // tail -- it must throw instead of being skipped.
  core::RecordStreamDecoder decoder;
  std::vector<core::JournalEntry> out;
  const std::string garbage = "run 0 ok 0 nonsense\n";
  EXPECT_THROW(decoder.feed(garbage.data(), garbage.size(), out),
               contract_error);
}

// ---------------------------------------------------------------------------
// Bit-identity across worker counts and regimes
// ---------------------------------------------------------------------------

TEST(ShardRunner, PathHelpers) {
  EXPECT_EQ(core::shard_journal_path("c.journal", 0), "c.journal.shard0");
  EXPECT_EQ(core::shard_journal_path("c.journal", 12), "c.journal.shard12");
  const auto seeds = core::derive_run_seeds(42, 6);
  EXPECT_EQ(seeds, core::derive_run_seeds(42, 6));  // pure function
  EXPECT_NE(seeds[0], seeds[1]);
}

TEST(ShardRunner, NoisyCampaignBitIdenticalForEveryWorkerCount) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);  // default setup is noisy
  core::CampaignConfig config;
  config.runs = 5;
  config.base_seed = 7;
  expect_sharded_bit_identical(*annealer, problem, config);
}

TEST(ShardRunner, IdealCampaignBitIdentical) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  core::StandardSetup setup;
  setup.iterations = 200;
  setup.variation = {};  // deterministic regime: exact arithmetic
  const auto annealer = core::make_annealer(core::AnnealerKind::kThisWorkIdeal,
                                            problem.model, setup);
  core::CampaignConfig config;
  config.runs = 5;
  expect_sharded_bit_identical(*annealer, problem, config);
}

TEST(ShardRunner, TiledCampaignBitIdentical) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  core::StandardSetup setup;
  setup.iterations = 200;
  setup.tiles = crossbar::TileShape{16, 16};
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, problem.model, setup);
  core::CampaignConfig config;
  config.runs = 4;
  expect_sharded_bit_identical(*annealer, problem, config);
}

TEST(ShardRunner, SimulatedBifurcationCampaignBitIdentical) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  core::StandardSetup setup;
  setup.iterations = 60;
  const auto annealer = core::make_annealer(core::AnnealerKind::kSbBallistic,
                                            problem.model, setup);
  core::CampaignConfig config;
  config.runs = 4;
  expect_sharded_bit_identical(*annealer, problem, config);
}

TEST(ShardRunner, WarmStartedCampaignBitIdentical) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  ASSERT_TRUE(problem.warm_start);
  core::StandardSetup setup;
  setup.iterations = 200;
  setup.initial_spins =
      std::make_shared<const ising::SpinVector>(problem.warm_start());
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, problem.model, setup);
  core::CampaignConfig config;
  config.runs = 4;
  expect_sharded_bit_identical(*annealer, problem, config);
}

TEST(ShardRunner, MoreWorkersThanRunsClampsCleanly) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  core::CampaignConfig config;
  config.runs = 2;
  config.workers = 0;
  const auto baseline = core::run_campaign(*annealer, problem, config);
  config.workers = 16;  // clamped to the run count
  expect_results_equal(baseline, core::run_campaign(*annealer, problem, config));
}

// ---------------------------------------------------------------------------
// Failure model
// ---------------------------------------------------------------------------

TEST(ShardRunner, DeadWorkerRunsAreReExecutedBitIdentically) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  core::CampaignConfig config;
  config.runs = 6;
  config.workers = 0;
  const auto baseline = core::run_campaign(*annealer, problem, config);

  const auto journal = temp_journal_path("kill");
  remove_journal_family(journal);
  config.workers = 3;
  config.journal_path = journal;
  config.inject.kill_workers = {1};  // dies after streaming run 1
  const auto recovered = core::run_campaign(*annealer, problem, config);
  expect_results_equal(baseline, recovered);

  // Success removes the per-shard journals; the main journal holds every
  // record, so a plain resume would re-execute nothing.
  EXPECT_TRUE(std::filesystem::exists(journal));
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_FALSE(
        std::filesystem::exists(core::shard_journal_path(journal, k)))
        << "shard file " << k << " leaked";
  remove_journal_family(journal);
}

TEST(ShardRunner, RetryHappensInsideTheWorker) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  core::CampaignConfig config;
  config.runs = 4;
  config.retries = 1;
  config.inject.fail_runs = {2};  // attempt 0 throws; attempt 1 recovers
  config.workers = 0;
  const auto baseline = core::run_campaign(*annealer, problem, config);
  ASSERT_EQ(baseline.per_run[2].status, core::RunStatus::kOk);
  EXPECT_EQ(baseline.per_run[2].attempt, 1u);

  config.workers = 2;
  const auto sharded = core::run_campaign(*annealer, problem, config);
  expect_results_equal(baseline, sharded);
}

TEST(ShardRunner, CancelledRecordsTravelTheWire) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  // A pre-expired campaign deadline cancels every run.  Cancelled records
  // are never journaled, but the parent's per_run must still match the
  // in-process path bit for bit -- they must cross the pipe.
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  core::CampaignConfig config;
  config.runs = 4;
  config.time_limit_seconds = 1e-9;
  config.workers = 0;
  const auto baseline = core::run_campaign(*annealer, problem, config);
  EXPECT_EQ(baseline.completed, 0u);
  config.workers = 2;
  const auto sharded = core::run_campaign(*annealer, problem, config);
  expect_results_equal(baseline, sharded);
}

TEST(ShardRunner, KillInjectionRequiresShardedExecution) {
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);
  core::CampaignConfig config;
  config.runs = 4;
  config.workers = 0;
  config.inject.kill_workers = {0};  // meaningless without workers
  EXPECT_THROW(core::run_campaign(*annealer, problem, config), contract_error);
  config.workers = 2;
  config.inject.kill_workers = {2};  // out of range for 2 workers
  EXPECT_THROW(core::run_campaign(*annealer, problem, config), contract_error);
}

// ---------------------------------------------------------------------------
// Per-shard journal resume union
// ---------------------------------------------------------------------------

TEST(ShardRunner, ResumeUnionsMainAndShardJournals) {
  if (!core::shard_runner_supported()) GTEST_SKIP() << "no fork";
  const auto problem = test_problem();
  const auto annealer = test_annealer(problem);

  // Produce the complete journal of an uninterrupted campaign.
  const auto journal = temp_journal_path("resume");
  remove_journal_family(journal);
  core::CampaignConfig config;
  config.runs = 5;
  config.journal_path = journal;
  config.workers = 0;
  const auto baseline = core::run_campaign(*annealer, problem, config);

  std::vector<std::string> run_lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line))
      if (line.rfind("run ", 0) == 0) run_lines.push_back(line);
  }
  ASSERT_EQ(run_lines.size(), config.runs);

  // Simulate an interrupted sharded campaign: runs {0, 2} made it into the
  // main journal, runs {1, 3} only into worker 0's shard journal, run 4 was
  // lost entirely.
  const auto header =
      core::format_journal_header(config.base_seed, config.runs);
  {
    std::ofstream main(journal, std::ios::trunc);
    main << header << "\n" << run_lines[0] << "\n" << run_lines[2] << "\n";
    std::ofstream shard(core::shard_journal_path(journal, 0), std::ios::trunc);
    shard << header << "\n" << run_lines[1] << "\n" << run_lines[3] << "\n";
  }

  // Arm fault injection on every resumed run: if the union failed to
  // install them, re-execution would fail the runs and break bit-identity.
  config.workers = 2;
  config.resume = true;
  config.inject.fail_runs = {0, 1, 2, 3};
  const auto resumed = core::run_campaign(*annealer, problem, config);
  expect_results_equal(baseline, resumed);

  // The union was persisted into the main journal and the shard file
  // removed, so the next resume no longer depends on it.
  EXPECT_FALSE(
      std::filesystem::exists(core::shard_journal_path(journal, 0)));
  const auto entries = core::read_journal_file(journal, config.base_seed,
                                               config.runs);
  EXPECT_EQ(entries.size(), config.runs);
  remove_journal_family(journal);
}

}  // namespace
