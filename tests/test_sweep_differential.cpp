// Randomized differential layer over the analog readout sweep: ~200 seeded
// configurations drawn across the whole contract surface -- problem size
// N in [3, 257], tile shapes down to 1-row bands, weight schemes (single-
// and two-plane), bit widths, variation seeds, Vth spread and stuck-fault
// masks -- each evaluated in one of the four readout regimes (deterministic,
// ADC-noise-only, read-noise-only, both).  For every configuration the
// vectorized engine must match the per-cell reference kernel bit for bit
// (e_inc, raw_vmv, the conversion ledger) with the keyed-noise conversion
// cursors in lockstep after every evaluation.
//
// This suite is the fuzzing counterpart of the hand-picked pins in
// tests/test_perf_equivalence.cpp and tests/test_tiled_engine.cpp: those
// freeze known-interesting cases; this one walks the configuration space so
// a data-parallel rewrite of the sweep (batched draws, lane-major
// conversion, band-parallel dispatch) cannot quietly change results on a
// shape nobody pinned.  Every configuration derives from a single counter
// seed, so a failure report ("config 137") reproduces in isolation.
//
// Labeled `differential` (and excluded from the tier-1 fast loop) in
// CMakeLists.txt; tools/check.sh --sanitize runs it under ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "core/insitu_annealer.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/reference_kernels.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"
#include "util/rng.hpp"

namespace {

using namespace fecim;

struct DifferentialConfig {
  std::size_t n = 0;
  int bits = 8;
  problems::WeightScheme weights = problems::WeightScheme::kPlusMinusOne;
  crossbar::TileShape tiles{};
  device::VariationParams variation{};
  double adc_noise_lsb = 0.0;
  std::uint64_t graph_seed = 0;
  std::uint64_t array_seed = 0;
  std::uint64_t run_seed = 0;
};

/// Configuration `index` of the deterministic schedule: every field derives
/// from Rng(index), so any failing case reproduces standalone.
DifferentialConfig make_config(std::uint64_t index) {
  util::Rng rng(0xd1ffe4e57ULL ^ (index * 0x9e3779b97f4a7c15ULL));
  DifferentialConfig cfg;
  cfg.n = 3 + rng.uniform_index(255);  // [3, 257]
  cfg.bits = 2 + static_cast<int>(rng.uniform_index(7));  // [2, 8]
  // kUnit quantizes to a single weight plane (no negative couplings), so the
  // negative-plane segments are absent end to end -- a sparsity class of its
  // own.
  cfg.weights = rng.bernoulli(0.25) ? problems::WeightScheme::kUnit
                                    : problems::WeightScheme::kPlusMinusOne;
  switch (rng.uniform_index(4)) {
    case 0:  // monolithic logical array
      cfg.tiles = {};
      break;
    case 1:  // degenerate 1-row bands: every cell is its own tile row
      cfg.tiles = crossbar::TileShape{1, 0};
      break;
    case 2:  // short bands (2..8 rows): many partially-present tiles
      cfg.tiles = crossbar::TileShape{2 + rng.uniform_index(7), 0};
      break;
    default:  // anything up to (and beyond) the full height
      cfg.tiles = crossbar::TileShape{1 + rng.uniform_index(cfg.n + 8), 0};
      break;
  }
  cfg.variation.vth_sigma = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.08) : 0.0;
  // Stuck-fault masks: stuck-off cells make individual (bit, plane) segments
  // vanish per band, stuck-on cells pin full-drive multipliers -- both
  // reshape the present-segment map the sweep and the cursor walk.
  if (rng.bernoulli(0.5)) cfg.variation.stuck_off_rate = rng.uniform(0.0, 0.1);
  if (rng.bernoulli(0.3)) cfg.variation.stuck_on_rate = rng.uniform(0.0, 0.05);
  // Four readout regimes, round-robin so each gets ~50 configurations:
  // deterministic, ADC-noise-only (the track_sq=false fast path),
  // read-noise-only, and both noise sources in quadrature.
  switch (index % 4) {
    case 0:
      break;
    case 1:
      cfg.adc_noise_lsb = rng.uniform(0.1, 1.0);
      break;
    case 2:
      cfg.variation.read_noise_rel = rng.uniform(0.005, 0.04);
      break;
    default:
      cfg.adc_noise_lsb = rng.uniform(0.1, 1.0);
      cfg.variation.read_noise_rel = rng.uniform(0.005, 0.04);
      break;
  }
  cfg.graph_seed = rng();
  cfg.array_seed = rng();
  cfg.run_seed = rng();
  return cfg;
}

/// Runs one configuration: a handful of random (spins, flips, signal)
/// evaluations, each checked engine-vs-reference bit for bit with the
/// conversion cursors compared after every call.
void run_config(const DifferentialConfig& cfg, std::uint64_t index) {
  const double degree =
      std::min(static_cast<double>(cfg.n - 1), 6.0);
  const auto model = problems::maxcut_to_ising(problems::random_graph(
      cfg.n, degree, cfg.weights, cfg.graph_seed));

  core::InSituConfig config;
  config.mapping.bits = cfg.bits;
  config.analog.adc.noise_lsb_rms = cfg.adc_noise_lsb;

  const crossbar::QuantizedCouplings quantized(model.couplings(), cfg.bits);
  const crossbar::CrossbarMapping mapping(
      model.num_spins(), quantized.has_negative() ? 2 : 1, config.mapping);
  const auto array = std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, config.device, cfg.variation, cfg.array_seed,
      cfg.tiles);

  crossbar::AnalogCrossbarEngine engine(array, config.analog);
  const double i_on_max = array->on_current(array->device_params().vbg_max);
  const double vbg_max = array->device_params().vbg_max;

  engine.begin_run(cfg.run_seed);
  auto noise_ref = crossbar::ReadoutNoise::for_run(cfg.run_seed);

  util::Rng trial_rng(cfg.run_seed ^ 0x7a1a15ULL);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(::testing::Message() << "config " << index << " trial "
                                      << trial << " n=" << cfg.n
                                      << " tiles.rows=" << cfg.tiles.rows);
    const std::size_t t =
        1 + trial_rng.uniform_index(std::min<std::size_t>(cfg.n, 5));
    const auto flips =
        ising::random_flip_set(model.num_spins(), t, trial_rng);
    const auto spins = ising::random_spins(model.num_spins(), trial_rng);
    const crossbar::AnnealSignal signal{trial_rng.uniform01(),
                                        trial_rng.uniform(0.3, vbg_max)};

    const auto optimized = engine.evaluate(spins, flips, signal);
    const auto reference = crossbar::reference::analog_evaluate(
        *array, engine.adc(), engine.ir_attenuation(),
        engine.band_attenuations(), i_on_max, spins, flips, signal,
        noise_ref);

    // Bit identity, not tolerance: the sweep's regrouping must be exact.
    ASSERT_EQ(optimized.e_inc, reference.e_inc);
    ASSERT_EQ(optimized.raw_vmv, reference.raw_vmv);
    ASSERT_EQ(optimized.trace.adc_conversions,
              reference.trace.adc_conversions);
    ASSERT_EQ(optimized.trace.partial_sum_updates,
              reference.trace.partial_sum_updates);
    ASSERT_EQ(optimized.trace.tile_activations,
              reference.trace.tile_activations);
    ASSERT_EQ(optimized.trace.mux_slot_cycles,
              reference.trace.mux_slot_cycles);
    // Cursor lockstep: both sides assigned the same keyed index to every
    // conversion, so the *next* evaluation starts aligned too.
    ASSERT_EQ(engine.readout_noise().next_conversion,
              noise_ref.next_conversion);
  }
}

constexpr std::uint64_t kNumConfigs = 200;

TEST(SweepDifferential, EngineMatchesReferenceAcrossRandomizedConfigs) {
  for (std::uint64_t index = 0; index < kNumConfigs; ++index) {
    const auto cfg = make_config(index);
    run_config(cfg, index);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "first divergence at config " << index;
      return;
    }
  }
}

}  // namespace
