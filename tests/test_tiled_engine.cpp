// Tile-partitioned crossbar execution: the equivalence suite pinning the
// TilePlan contract end to end.
//
//  * Deterministic readout is partition-invariant: for every tile shape the
//    engine's e_inc / raw_vmv are bit-identical to the monolithic engine
//    (integer regrouping -- the per-tile partial sums are exact, so the
//    digital merge reconstructs the logical conversion), while the
//    trace/ledger reports the genuinely larger physical conversion count
//    and the milder per-tile IR attenuation.
//  * Stochastic readout is a pure function of (run seed, tile shape): one
//    keyed draw + one quantization per (tile, present column) in the
//    canonical cursor order, bit-identical to the tile-aware reference
//    kernel and reproducible across engine instances.
#include <gtest/gtest.h>

#include "core/insitu_annealer.hpp"
#include "core/runner.hpp"
#include "crossbar/analog_engine.hpp"
#include "crossbar/ideal_engine.hpp"
#include "crossbar/reference_kernels.hpp"
#include "problems/generators.hpp"
#include "problems/maxcut.hpp"

namespace {

using namespace fecim;

ising::IsingModel make_model(std::size_t n, problems::WeightScheme weights,
                             std::uint64_t seed) {
  return problems::maxcut_to_ising(
      problems::random_graph(n, 6.0, weights, seed));
}

std::shared_ptr<const crossbar::ProgrammedArray> make_array(
    const ising::IsingModel& model, int bits,
    const device::VariationParams& variation, std::uint64_t seed,
    const crossbar::TileShape& tiles) {
  const crossbar::QuantizedCouplings quantized(model.couplings(), bits);
  const crossbar::CrossbarMapping mapping(
      model.num_spins(), quantized.has_negative() ? 2 : 1,
      crossbar::MappingConfig{bits, 8, true});
  return std::make_shared<const crossbar::ProgrammedArray>(
      quantized, mapping, device::DgFefetParams{}, variation, seed, tiles);
}

// ---------------------------------------------------------------------------
// Band-partitioned cache structure.
// ---------------------------------------------------------------------------

TEST(TiledArray, BandCellRangesPartitionEveryColumn) {
  const auto model = make_model(60, problems::WeightScheme::kPlusMinusOne, 3);
  device::VariationParams variation;
  variation.vth_sigma = 0.04;
  variation.stuck_off_rate = 0.02;
  const auto array = make_array(model, 8, variation, 5,
                                crossbar::TileShape{13, 0});
  const auto bands = array->bands();
  ASSERT_EQ(bands.size(), 5u);  // 60 rows / cap 13 -> 5 bands of 12

  for (std::size_t j = 0; j < model.num_spins(); ++j) {
    const auto view = array->column(j);
    std::size_t cursor = 0;
    std::uint32_t total = 0;
    std::uint32_t active = 0;
    for (std::size_t b = 0; b < bands.size(); ++b) {
      const auto range = array->column_band_cells(b, j);
      EXPECT_EQ(range.begin, cursor);
      cursor = range.end;
      for (std::uint32_t k = range.begin; k < range.end; ++k) {
        EXPECT_GE(view.rows[k], bands[b].row_begin);
        EXPECT_LT(view.rows[k], bands[b].row_end);
      }
      // Band-local segment classes index band-relative rows.
      for (const auto& cls : array->column_classes(b, j))
        for (std::uint32_t k = cls.begin; k < cls.end; ++k)
          EXPECT_LT(array->cache_rows()[k], bands[b].rows());
      const auto present = array->column_present_segments(b, j);
      total += present;
      if (present > 0) ++active;
    }
    EXPECT_EQ(cursor, view.rows.size());
    EXPECT_EQ(total, array->column_total_present_segments(j));
    EXPECT_EQ(active, array->column_active_bands(j));
    EXPECT_LE(array->column_union_present_segments(j), total);
  }
}

TEST(TiledArray, MonolithicShapeKeepsOneBand) {
  const auto model = make_model(48, problems::WeightScheme::kUnit, 4);
  const auto array = make_array(model, 4, {}, 7, crossbar::TileShape{});
  EXPECT_EQ(array->num_bands(), 1u);
  EXPECT_EQ(array->bands()[0].rows(), 48u);
  for (std::size_t j = 0; j < model.num_spins(); ++j)
    EXPECT_EQ(array->column_total_present_segments(j),
              array->column_union_present_segments(j));
}

// ---------------------------------------------------------------------------
// Deterministic readout: bit-identical across every tile shape.
// ---------------------------------------------------------------------------

void expect_deterministic_partition_invariance(
    const ising::IsingModel& model, const device::VariationParams& variation,
    std::uint64_t seed) {
  core::InSituConfig config;
  config.analog.adc.noise_lsb_rms = 0.0;  // deterministic readout

  const std::vector<crossbar::TileShape> shapes = {
      {},                                    // monolithic
      {model.num_spins() / 2, 0},            // two bands
      {17, 256},                             // many uneven bands
      {1, 0},                                // degenerate one-row tiles
  };

  std::vector<crossbar::AnalogCrossbarEngine> engines;
  engines.reserve(shapes.size());
  for (const auto& shape : shapes)
    engines.emplace_back(make_array(model, 8, variation, seed, shape),
                         config.analog);
  for (auto& engine : engines) engine.begin_run(seed + 1);

  util::Rng selector(seed ^ 0x71135);
  const double vbg_max = device::DgFefetParams{}.vbg_max;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t t = 1 + selector.uniform_index(4);
    const auto flips = ising::random_flip_set(model.num_spins(), t, selector);
    const auto spins = ising::random_spins(model.num_spins(), selector);
    const crossbar::AnnealSignal signal{
        selector.uniform01(), selector.uniform(0.3, vbg_max)};

    const auto monolithic = engines[0].evaluate(spins, flips, signal);
    for (std::size_t s = 1; s < engines.size(); ++s) {
      const auto tiled = engines[s].evaluate(spins, flips, signal);
      ASSERT_EQ(tiled.e_inc, monolithic.e_inc) << "shape " << s;
      ASSERT_EQ(tiled.raw_vmv, monolithic.raw_vmv) << "shape " << s;
      // The physical walk differs: a >1-band grid converts at least as
      // often and never merges fewer partial sums.
      ASSERT_GE(tiled.trace.adc_conversions, monolithic.trace.adc_conversions);
      ASSERT_GE(tiled.trace.tile_activations,
                monolithic.trace.tile_activations);
    }
  }
}

TEST(TiledEngine, DeterministicIdealCellsPartitionInvariant) {
  const auto model = make_model(48, problems::WeightScheme::kUnit, 100);
  expect_deterministic_partition_invariance(model, {}, 11);
}

TEST(TiledEngine, DeterministicWeightedGraphPartitionInvariant) {
  const auto model =
      make_model(48, problems::WeightScheme::kPlusMinusOne, 101);
  expect_deterministic_partition_invariance(model, {}, 13);
}

TEST(TiledEngine, DeterministicStuckFaultsPartitionInvariant) {
  // Stuck-at faults keep every multiplier in {0, 1}: partial sums stay
  // integers, so the regrouping argument holds with faulted cells too.
  const auto model = make_model(48, problems::WeightScheme::kUnit, 102);
  device::VariationParams faults;
  faults.stuck_off_rate = 0.05;
  faults.stuck_on_rate = 0.02;
  expect_deterministic_partition_invariance(model, faults, 17);
}

// ---------------------------------------------------------------------------
// Stochastic readout: engine == tile-aware reference, bit for bit, for any
// tile shape; cursors in lockstep.
// ---------------------------------------------------------------------------

void expect_tiled_reference_equivalence(const ising::IsingModel& model,
                                        const device::VariationParams& variation,
                                        const crossbar::TileShape& shape,
                                        std::uint64_t seed,
                                        double adc_noise_lsb) {
  crossbar::AnalogEngineConfig config;
  config.adc.noise_lsb_rms = adc_noise_lsb;
  const auto array = make_array(model, 8, variation, seed, shape);
  crossbar::AnalogCrossbarEngine engine(array, config);
  const double i_on_max = array->on_current(array->device_params().vbg_max);

  util::Rng selector(seed ^ 0xf11b5);
  engine.begin_run(seed + 1);
  auto noise_ref = crossbar::ReadoutNoise::for_run(seed + 1);

  const double vbg_max = array->device_params().vbg_max;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t t = 1 + selector.uniform_index(4);
    const auto flips = ising::random_flip_set(model.num_spins(), t, selector);
    const auto spins = ising::random_spins(model.num_spins(), selector);
    const crossbar::AnnealSignal signal{
        selector.uniform01(), selector.uniform(0.3, vbg_max)};

    const auto optimized = engine.evaluate(spins, flips, signal);
    const auto reference = crossbar::reference::analog_evaluate(
        *array, engine.adc(), engine.ir_attenuation(),
        engine.band_attenuations(), i_on_max, spins, flips, signal, noise_ref);

    ASSERT_EQ(optimized.e_inc, reference.e_inc);
    ASSERT_EQ(optimized.raw_vmv, reference.raw_vmv);
    ASSERT_EQ(optimized.trace.adc_conversions,
              reference.trace.adc_conversions);
    ASSERT_EQ(optimized.trace.tile_activations,
              reference.trace.tile_activations);
    ASSERT_EQ(optimized.trace.partial_sum_updates,
              reference.trace.partial_sum_updates);
    ASSERT_EQ(optimized.trace.mux_slot_cycles, reference.trace.mux_slot_cycles);
    ASSERT_EQ(optimized.trace.tile_ir_attenuation,
              reference.trace.tile_ir_attenuation);
    // Both sides assigned the same indices to the same conversions.
    ASSERT_EQ(engine.readout_noise().next_conversion,
              noise_ref.next_conversion);
  }
}

TEST(TiledEngine, NoisyMatchesReferenceAcrossShapes) {
  const auto model =
      make_model(48, problems::WeightScheme::kPlusMinusOne, 200);
  device::VariationParams variation;
  variation.vth_sigma = 0.04;
  variation.read_noise_rel = 0.02;
  variation.stuck_off_rate = 0.01;
  for (const auto& shape : std::vector<crossbar::TileShape>{
           {}, {16, 0}, {7, 128}, {1, 0}}) {
    expect_tiled_reference_equivalence(model, variation, shape, 23, 0.5);
  }
}

TEST(TiledEngine, AdcNoiseOnlyMatchesReferenceAcrossShapes) {
  const auto model = make_model(48, problems::WeightScheme::kUnit, 201);
  for (const auto& shape :
       std::vector<crossbar::TileShape>{{}, {12, 0}, {5, 0}}) {
    expect_tiled_reference_equivalence(model, {}, shape, 29, 0.5);
  }
}

TEST(TiledEngine, DeterministicTiledMatchesReference) {
  // The reference kernel encodes the shared-conversion contract too: the
  // deterministic tiled walk must agree with it bit for bit (and with the
  // monolithic result, by the partition-invariance tests above).
  const auto model = make_model(48, problems::WeightScheme::kUnit, 202);
  for (const auto& shape :
       std::vector<crossbar::TileShape>{{}, {16, 0}, {9, 0}}) {
    expect_tiled_reference_equivalence(model, {}, shape, 31, 0.0);
  }
}

TEST(TiledEngine, NoisyReproduciblePerSeedAndShape) {
  const auto model =
      make_model(48, problems::WeightScheme::kPlusMinusOne, 300);
  device::VariationParams variation;
  variation.read_noise_rel = 0.03;
  const crossbar::TileShape shape{12, 0};
  crossbar::AnalogEngineConfig config;  // default ADC noise on

  const auto array = make_array(model, 8, variation, 41, shape);
  crossbar::AnalogCrossbarEngine first(array, config);
  crossbar::AnalogCrossbarEngine second(array, config);
  const auto mono_array = make_array(model, 8, variation, 41, {});
  crossbar::AnalogCrossbarEngine monolithic(mono_array, config);
  first.begin_run(77);
  second.begin_run(77);
  monolithic.begin_run(77);

  util::Rng selector(91);
  double tiled_sum = 0.0;
  double mono_sum = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto flips = ising::random_flip_set(
        model.num_spins(), 1 + selector.uniform_index(3), selector);
    const auto spins = ising::random_spins(model.num_spins(), selector);
    const crossbar::AnnealSignal signal{selector.uniform01(),
                                        selector.uniform(0.3, 0.7)};
    const auto a = first.evaluate(spins, flips, signal);
    const auto b = second.evaluate(spins, flips, signal);
    // Same (seed, shape) -> the same noisy result, instance by instance.
    ASSERT_EQ(a.e_inc, b.e_inc);
    tiled_sum += a.e_inc;
    mono_sum += monolithic.evaluate(spins, flips, signal).e_inc;
  }
  // Different tile shapes perform different physical conversion walks, so
  // their noisy trajectories deliberately differ.
  EXPECT_NE(tiled_sum, mono_sum);
}

// ---------------------------------------------------------------------------
// Annealer- and ledger-level behaviour.
// ---------------------------------------------------------------------------

core::MaxcutInstance tiled_instance(std::size_t n, std::uint64_t seed) {
  return core::make_maxcut_instance(
      "tiled", problems::random_graph(n, 6.0, problems::WeightScheme::kUnit,
                                      seed),
      16, seed);
}

TEST(TiledAnnealer, DeterministicRunsMatchMonolithicAndReportTileEvents) {
  const auto instance = tiled_instance(96, 501);
  core::InSituConfig base;
  base.iterations = 300;
  base.flips_per_iteration = 2;
  base.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  base.analog.adc.noise_lsb_rms = 0.0;  // deterministic readout

  auto tiled = base;
  tiled.tiles = crossbar::TileShape{24, 512};

  const core::InSituCimAnnealer monolithic(instance.model, base);
  const core::InSituCimAnnealer partitioned(instance.model, tiled);
  ASSERT_EQ(partitioned.array()->num_bands(), 4u);

  const auto mono = monolithic.run(7);
  const auto part = partitioned.run(7);
  // Same physics, same proposals, partition-invariant deterministic
  // readout: the annealing trajectory is bit-identical.
  EXPECT_EQ(part.best_energy, mono.best_energy);
  EXPECT_EQ(part.final_energy, mono.final_energy);
  EXPECT_EQ(part.best_spins, mono.best_spins);
  EXPECT_EQ(part.accepted_moves, mono.accepted_moves);
  // ...while the hardware events are honestly tiled: more conversions,
  // per-tile partial-sum merges, and >1 tile activations per evaluation.
  EXPECT_GT(part.ledger.adc_conversions, mono.ledger.adc_conversions);
  EXPECT_GT(part.ledger.partial_sum_updates, 0u);
  EXPECT_EQ(mono.ledger.partial_sum_updates, 0u);
  EXPECT_GT(part.ledger.tile_activations, mono.ledger.tile_activations);
}

TEST(TiledAnnealer, TileAttenuationIsMilderThanMonolithic) {
  const auto instance = tiled_instance(512, 502);
  core::InSituConfig base;
  base.iterations = 1;

  auto tiled = base;
  tiled.tiles = crossbar::TileShape{128, 1024};

  const core::InSituCimAnnealer mono_annealer(instance.model, base);
  const core::InSituCimAnnealer tiled_annealer(instance.model, tiled);
  const crossbar::AnalogCrossbarEngine mono_engine(mono_annealer.array(),
                                                   base.analog);
  const crossbar::AnalogCrossbarEngine tiled_engine(tiled_annealer.array(),
                                                    tiled.analog);
  // Shorter per-tile lines lose strictly less current than the monolithic
  // 512-row line (attenuation factor closer to 1).
  EXPECT_GT(tiled_engine.tile_attenuation(), mono_engine.tile_attenuation());
  EXPECT_LE(tiled_engine.tile_attenuation(), 1.0);
  EXPECT_EQ(tiled_engine.band_attenuations().size(), 4u);
  // The logical calibration point is the same array either way.
  EXPECT_EQ(tiled_engine.ir_attenuation(), mono_engine.ir_attenuation());

  // The per-evaluation trace carries the per-tile factor.
  auto engine = crossbar::AnalogCrossbarEngine(tiled_annealer.array(),
                                               tiled.analog);
  engine.begin_run(1);
  util::Rng rng(3);
  const auto spins = ising::random_spins(instance.model->num_spins(), rng);
  const auto flips = ising::random_flip_set(instance.model->num_spins(), 2, rng);
  const auto result = engine.evaluate(spins, flips, {1.0, 0.7});
  EXPECT_EQ(result.trace.tile_ir_attenuation, engine.tile_attenuation());
  EXPECT_GT(result.trace.tile_ir_attenuation,
            mono_engine.tile_attenuation());
}

TEST(TiledAnnealer, IdealEngineScalesConversionAccounting) {
  const auto instance = tiled_instance(64, 503);
  core::InSituConfig base;
  base.iterations = 100;
  base.flips_per_iteration = 2;
  base.flip_selection = core::InSituConfig::FlipSelection::kRandom;
  base.engine = core::InSituConfig::EngineKind::kIdeal;

  auto tiled = base;
  tiled.tiles = crossbar::TileShape{16, 0};  // 4 row bands

  const core::InSituCimAnnealer monolithic(instance.model, base);
  const core::InSituCimAnnealer partitioned(instance.model, tiled);
  const auto mono = monolithic.run(9);
  const auto part = partitioned.run(9);
  // Exact arithmetic either way -> identical trajectory...
  EXPECT_EQ(part.best_energy, mono.best_energy);
  EXPECT_EQ(part.final_energy, mono.final_energy);
  // ...with dense-tile accounting: 4x the conversions, 3/4 of them merged.
  EXPECT_EQ(part.ledger.adc_conversions, 4 * mono.ledger.adc_conversions);
  EXPECT_EQ(part.ledger.partial_sum_updates,
            3 * mono.ledger.adc_conversions);
  EXPECT_EQ(part.ledger.tile_activations, 4 * mono.ledger.tile_activations);
}

TEST(TiledAnnealer, NoisyCampaignReproduciblePerShape) {
  const auto instance = tiled_instance(64, 504);
  core::InSituConfig config;
  config.iterations = 200;
  config.flips_per_iteration = 2;
  config.variation.vth_sigma = 0.03;
  config.variation.read_noise_rel = 0.02;
  config.tiles = crossbar::TileShape{16, 0};

  const core::InSituCimAnnealer annealer(instance.model, config);
  core::CampaignConfig campaign;
  campaign.runs = 4;
  const auto problem = core::as_problem(instance);
  const auto first = core::run_campaign(annealer, problem, campaign);
  const auto second = core::run_campaign(annealer, problem, campaign);
  ASSERT_EQ(first.per_run.size(), second.per_run.size());
  for (std::size_t r = 0; r < first.per_run.size(); ++r) {
    EXPECT_EQ(first.per_run[r].best_energy, second.per_run[r].best_energy);
    EXPECT_EQ(first.per_run[r].best_spins, second.per_run[r].best_spins);
  }
  EXPECT_GT(first.total_ledger.partial_sum_updates, 0u);
  EXPECT_GT(first.total_ledger.tile_activations, 0u);
}

}  // namespace
