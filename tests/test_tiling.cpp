// Multi-tile crossbar planning.
#include <gtest/gtest.h>

#include "crossbar/tiling.hpp"
#include "util/assert.hpp"

namespace {

using fecim::crossbar::CrossbarMapping;
using fecim::crossbar::plan_tiles;
using fecim::crossbar::TileConstraints;

TEST(Tiling, SmallArrayFitsOneTile) {
  const CrossbarMapping mapping(100, 1, {8, 8, true});  // 100 x 800
  const auto plan = plan_tiles(mapping, {}, 1e-5, 1.0);
  EXPECT_EQ(plan.num_tiles, 1u);
  EXPECT_EQ(plan.partial_sums_per_column(), 1u);
  EXPECT_DOUBLE_EQ(plan.tile_ir_attenuation, plan.monolithic_ir_attenuation);
}

TEST(Tiling, PaperScaleInstanceTiles) {
  // 3000 spins x 8 bits = 3000 x 24000 bit-cells -> 3 x 24 grid of
  // 1024-bounded tiles.
  const CrossbarMapping mapping(3000, 1, {8, 8, true});
  const auto plan = plan_tiles(mapping, {}, 1e-5, 1.0);
  EXPECT_EQ(plan.grid_rows, 3u);
  EXPECT_EQ(plan.grid_columns, 24u);
  EXPECT_EQ(plan.num_tiles, 72u);
  EXPECT_LE(plan.tile_rows, 1024u);
  EXPECT_LE(plan.tile_columns, 1024u);
  // Balanced split: 3000 rows over 3 tiles -> 1000 each.
  EXPECT_EQ(plan.tile_rows, 1000u);
  EXPECT_EQ(plan.partial_sums_per_column(), 3u);
}

TEST(Tiling, CoverageIsComplete) {
  const CrossbarMapping mapping(777, 2, {6, 8, true});
  const auto plan = plan_tiles(mapping, {}, 1e-5, 1.0);
  EXPECT_GE(plan.tile_rows * plan.grid_rows, plan.logical_rows);
  EXPECT_GE(plan.tile_columns * plan.grid_columns, plan.logical_columns);
}

TEST(Tiling, TilingImprovesIrDrop) {
  const CrossbarMapping mapping(3000, 1, {8, 8, true});
  const auto plan = plan_tiles(mapping, {}, 1e-5, 1.0);
  EXPECT_GT(plan.tile_ir_attenuation, plan.monolithic_ir_attenuation);
  EXPECT_LE(plan.tile_ir_attenuation, 1.0);
}

TEST(Tiling, TighterConstraintsMakeMoreTiles) {
  const CrossbarMapping mapping(2000, 1, {8, 8, true});
  TileConstraints loose;
  TileConstraints tight;
  tight.max_rows = 256;
  tight.max_columns = 256;
  const auto plan_loose = plan_tiles(mapping, loose, 1e-5, 1.0);
  const auto plan_tight = plan_tiles(mapping, tight, 1e-5, 1.0);
  EXPECT_GT(plan_tight.num_tiles, plan_loose.num_tiles);
  // Smaller tiles -> shorter lines -> better per-tile attenuation.
  EXPECT_GE(plan_tight.tile_ir_attenuation, plan_loose.tile_ir_attenuation);
}

TEST(Tiling, ValidatesConstraints) {
  const CrossbarMapping mapping(64, 1, {8, 8, true});
  TileConstraints bad;
  bad.max_rows = 0;
  EXPECT_THROW(plan_tiles(mapping, bad, 1e-5, 1.0), fecim::contract_error);
}

}  // namespace
