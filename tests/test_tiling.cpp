// Multi-tile crossbar planning.
#include <gtest/gtest.h>

#include "crossbar/tiling.hpp"
#include "util/assert.hpp"

namespace {

using fecim::crossbar::CrossbarMapping;
using fecim::crossbar::plan_row_bands;
using fecim::crossbar::plan_tiles;
using fecim::crossbar::TileConstraints;
using fecim::crossbar::TileShape;

TEST(Tiling, SmallArrayFitsOneTile) {
  const CrossbarMapping mapping(100, 1, {8, 8, true});  // 100 x 800
  const auto plan = plan_tiles(mapping, TileConstraints{}, 1e-5, 1.0);
  EXPECT_EQ(plan.num_tiles, 1u);
  EXPECT_EQ(plan.partial_sums_per_column(), 1u);
  EXPECT_DOUBLE_EQ(plan.tile_ir_attenuation, plan.monolithic_ir_attenuation);
}

TEST(Tiling, PaperScaleInstanceTiles) {
  // 3000 spins x 8 bits = 3000 x 24000 bit-cells -> 3 x 24 grid of
  // 1024-bounded tiles.
  const CrossbarMapping mapping(3000, 1, {8, 8, true});
  const auto plan = plan_tiles(mapping, TileConstraints{}, 1e-5, 1.0);
  EXPECT_EQ(plan.grid_rows, 3u);
  EXPECT_EQ(plan.grid_columns, 24u);
  EXPECT_EQ(plan.num_tiles, 72u);
  EXPECT_LE(plan.tile_rows, 1024u);
  EXPECT_LE(plan.tile_columns, 1024u);
  // Balanced split: 3000 rows over 3 tiles -> 1000 each.
  EXPECT_EQ(plan.tile_rows, 1000u);
  EXPECT_EQ(plan.partial_sums_per_column(), 3u);
}

TEST(Tiling, CoverageIsComplete) {
  const CrossbarMapping mapping(777, 2, {6, 8, true});
  const auto plan = plan_tiles(mapping, TileConstraints{}, 1e-5, 1.0);
  EXPECT_GE(plan.tile_rows * plan.grid_rows, plan.logical_rows);
  EXPECT_GE(plan.tile_columns * plan.grid_columns, plan.logical_columns);
}

TEST(Tiling, TilingImprovesIrDrop) {
  const CrossbarMapping mapping(3000, 1, {8, 8, true});
  const auto plan = plan_tiles(mapping, TileConstraints{}, 1e-5, 1.0);
  EXPECT_GT(plan.tile_ir_attenuation, plan.monolithic_ir_attenuation);
  EXPECT_LE(plan.tile_ir_attenuation, 1.0);
}

TEST(Tiling, TighterConstraintsMakeMoreTiles) {
  const CrossbarMapping mapping(2000, 1, {8, 8, true});
  TileConstraints loose;
  TileConstraints tight;
  tight.max_rows = 256;
  tight.max_columns = 256;
  const auto plan_loose = plan_tiles(mapping, loose, 1e-5, 1.0);
  const auto plan_tight = plan_tiles(mapping, tight, 1e-5, 1.0);
  EXPECT_GT(plan_tight.num_tiles, plan_loose.num_tiles);
  // Smaller tiles -> shorter lines -> better per-tile attenuation.
  EXPECT_GE(plan_tight.tile_ir_attenuation, plan_loose.tile_ir_attenuation);
}

TEST(Tiling, ValidatesConstraints) {
  const CrossbarMapping mapping(64, 1, {8, 8, true});
  TileConstraints bad;
  bad.max_rows = 0;
  EXPECT_THROW(plan_tiles(mapping, bad, 1e-5, 1.0), fecim::contract_error);
}

// ---------------------------------------------------------------------------
// plan_tiles / plan_row_bands edge cases: exact divisibility, remainder
// bands, and constraints larger than the logical array.
// ---------------------------------------------------------------------------

TEST(Tiling, ExactlyDivisibleLogicalSize) {
  // 2048 rows / 512-row tiles: no remainder anywhere, four equal bands.
  const CrossbarMapping mapping(2048, 1, {8, 8, true});
  TileConstraints constraints;
  constraints.max_rows = 512;
  constraints.max_columns = 2048;
  const auto plan = plan_tiles(mapping, constraints, 1e-5, 1.0);
  EXPECT_EQ(plan.grid_rows, 4u);
  EXPECT_EQ(plan.tile_rows, 512u);
  EXPECT_EQ(plan.tile_rows * plan.grid_rows, plan.logical_rows);
  // 2048 * 8 bits = 16384 columns / 2048 -> exactly 8 column bands.
  EXPECT_EQ(plan.grid_columns, 8u);
  EXPECT_EQ(plan.tile_columns * plan.grid_columns, plan.logical_columns);

  const auto bands = plan_row_bands(2048, 512);
  ASSERT_EQ(bands.size(), 4u);
  for (const auto& band : bands) EXPECT_EQ(band.rows(), 512u);
}

TEST(Tiling, SingleRowRemainderBand) {
  // 1025 rows under a 512 cap: the balanced split still never leaves a
  // one-row runt (ceil(1025/3) = 342 -> bands 342/342/341), and the band
  // list covers the row range exactly, in order, without overlap.
  const auto bands = plan_row_bands(1025, 512);
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].rows(), 342u);
  EXPECT_EQ(bands[1].rows(), 342u);
  EXPECT_EQ(bands[2].rows(), 341u);
  std::size_t covered = 0;
  std::uint32_t cursor = 0;
  for (const auto& band : bands) {
    EXPECT_EQ(band.row_begin, cursor);
    EXPECT_LT(band.row_begin, band.row_end);
    cursor = band.row_end;
    covered += band.rows();
  }
  EXPECT_EQ(covered, 1025u);

  // A genuinely pathological request (cap = n - 1) costs one extra band of
  // about half the rows, never a single-row band.
  const auto nearly = plan_row_bands(1025, 1024);
  ASSERT_EQ(nearly.size(), 2u);
  EXPECT_EQ(nearly[0].rows(), 513u);
  EXPECT_EQ(nearly[1].rows(), 512u);
}

TEST(Tiling, ConstraintsLargerThanLogicalArrayDegenerate) {
  // Caps beyond the logical extent must degenerate to one monolithic tile.
  const CrossbarMapping mapping(96, 1, {8, 8, true});  // 96 x 768
  TileConstraints roomy;
  roomy.max_rows = 4096;
  roomy.max_columns = 1 << 20;
  const auto plan = plan_tiles(mapping, roomy, 1e-5, 1.0);
  EXPECT_EQ(plan.num_tiles, 1u);
  EXPECT_EQ(plan.grid_rows, 1u);
  EXPECT_EQ(plan.grid_columns, 1u);
  EXPECT_EQ(plan.tile_rows, 96u);
  EXPECT_EQ(plan.tile_columns, 768u);
  EXPECT_DOUBLE_EQ(plan.tile_ir_attenuation, plan.monolithic_ir_attenuation);

  const auto bands = plan_row_bands(96, 4096);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands[0].row_begin, 0u);
  EXPECT_EQ(bands[0].row_end, 96u);
}

TEST(Tiling, TileShapeOverloadMatchesConstraints) {
  const CrossbarMapping mapping(1000, 2, {8, 8, true});
  TileShape shape;
  shape.rows = 256;
  shape.cols = 4096;
  const auto from_shape = plan_tiles(mapping, shape, 1e-5, 1.0);
  TileConstraints constraints;
  constraints.max_rows = 256;
  constraints.max_columns = 4096;
  const auto from_constraints = plan_tiles(mapping, constraints, 1e-5, 1.0);
  EXPECT_EQ(from_shape.grid_rows, from_constraints.grid_rows);
  EXPECT_EQ(from_shape.grid_columns, from_constraints.grid_columns);
  EXPECT_EQ(from_shape.tile_rows, from_constraints.tile_rows);
  EXPECT_DOUBLE_EQ(from_shape.tile_ir_attenuation,
                   from_constraints.tile_ir_attenuation);

  // The all-zero shape is the documented monolithic default.
  EXPECT_TRUE(TileShape{}.monolithic());
  const auto monolithic = plan_tiles(mapping, TileShape{}, 1e-5, 1.0);
  EXPECT_EQ(monolithic.num_tiles, 1u);
}

}  // namespace
