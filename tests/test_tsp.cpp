// TSP QUBO encoding, decoding, heuristics, and end-to-end annealing.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/annealer_factory.hpp"
#include "problems/tsp.hpp"
#include "util/assert.hpp"

namespace {

using namespace fecim;
using problems::TspInstance;

TspInstance square_instance() {
  // Four cities on a unit square: optimal tour = perimeter = 4.
  TspInstance instance;
  const double s2 = std::sqrt(2.0);
  instance.distances = {{0, 1, s2, 1},
                        {1, 0, 1, s2},
                        {s2, 1, 0, 1},
                        {1, s2, 1, 0}};
  return instance;
}

TEST(Tsp, RandomInstanceIsMetricSymmetric) {
  const auto instance = problems::random_tsp(8, 3);
  for (std::size_t u = 0; u < 8; ++u) {
    EXPECT_DOUBLE_EQ(instance.distances[u][u], 0.0);
    for (std::size_t v = 0; v < 8; ++v) {
      EXPECT_DOUBLE_EQ(instance.distances[u][v], instance.distances[v][u]);
      EXPECT_LE(instance.distances[u][v], std::sqrt(2.0));
    }
  }
}

TEST(Tsp, TourLengthCyclic) {
  const auto instance = square_instance();
  const std::vector<std::uint32_t> perimeter{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(problems::tour_length(instance, perimeter), 4.0);
  const std::vector<std::uint32_t> crossing{0, 2, 1, 3};
  EXPECT_NEAR(problems::tour_length(instance, crossing),
              2.0 + 2.0 * std::sqrt(2.0), 1e-12);
}

TEST(Tsp, OptimalLengthBruteForce) {
  EXPECT_DOUBLE_EQ(problems::tsp_optimal_length(square_instance()), 4.0);
  const auto random_instance = problems::random_tsp(7, 5);
  const double optimum = problems::tsp_optimal_length(random_instance);
  // Any specific tour bounds the optimum from above.
  std::vector<std::uint32_t> identity(7);
  std::iota(identity.begin(), identity.end(), 0u);
  EXPECT_LE(optimum, problems::tour_length(random_instance, identity) + 1e-12);
}

TEST(Tsp, HeuristicFindsOptimumOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto instance = problems::random_tsp(8, seed);
    const auto tour = problems::tsp_heuristic(instance);
    EXPECT_TRUE(tour.valid);
    const double optimum = problems::tsp_optimal_length(instance);
    // NN + 2-opt is near-optimal at this size.
    EXPECT_LE(tour.length, optimum * 1.05 + 1e-9);
    EXPECT_GE(tour.length, optimum - 1e-9);
  }
}

TEST(Tsp, QuboValueEqualsTourLengthForValidAssignments) {
  const auto instance = square_instance();
  const auto encoding = problems::tsp_to_qubo(instance);
  // Encode the perimeter tour 0-1-2-3.
  std::vector<std::uint8_t> x(16, 0);
  for (std::size_t p = 0; p < 4; ++p) x[p * 4 + p] = 1;  // city p at pos p
  const auto tour = problems::decode_tsp(instance, encoding, x);
  ASSERT_TRUE(tour.valid);
  EXPECT_EQ(tour.violations, 0u);
  EXPECT_DOUBLE_EQ(tour.length, 4.0);
  // Valid assignment: all penalties vanish, H = tour length.
  EXPECT_NEAR(encoding.qubo.value(x), 4.0, 1e-9);
}

TEST(Tsp, QuboPenalizesInvalidAssignments) {
  const auto instance = square_instance();
  const auto encoding = problems::tsp_to_qubo(instance);
  std::vector<std::uint8_t> empty(16, 0);
  EXPECT_GE(encoding.qubo.value(empty), 2.0 * encoding.penalty - 1e-9);
  const auto tour = problems::decode_tsp(instance, encoding, empty);
  EXPECT_FALSE(tour.valid);
  // All-zero assignment: every city unvisited and every position unfilled.
  EXPECT_EQ(tour.violations, 8u);
}

TEST(Tsp, QuboGroundStateIsOptimalTour) {
  // 4 cities -> 16 variables: exhaustible through the Ising brute force.
  const auto instance = square_instance();
  const auto encoding = problems::tsp_to_qubo(instance);
  const auto ising_model = encoding.qubo.to_ising();
  const auto [spins, energy] = ising_model.brute_force_ground_state();
  const auto x = ising::binary_from_spins(spins);
  const auto tour = problems::decode_tsp(instance, encoding, x);
  ASSERT_TRUE(tour.valid);
  EXPECT_NEAR(tour.length, 4.0, 1e-9);
  EXPECT_NEAR(energy, 4.0, 1e-9);
}

TEST(Tsp, AnnealerFindsValidShortTour) {
  const auto instance = problems::random_tsp(5, 9);
  const auto encoding = problems::tsp_to_qubo(instance);
  const auto folded = std::make_shared<const ising::IsingModel>(
      encoding.qubo.to_ising().with_ancilla());

  core::StandardSetup setup;
  setup.iterations = 30000;
  setup.acceptance_gain = 4.0;
  setup.variation = {0.01, 0.02, 0.0, 0.0};  // program-verify precision
  const auto annealer =
      core::make_annealer(core::AnnealerKind::kThisWork, folded, setup);

  problems::TspTour best;
  best.length = 1e18;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto spins = annealer->run(seed).best_spins;
    spins.pop_back();
    const auto tour = problems::decode_tsp(instance, encoding,
                                           ising::binary_from_spins(spins));
    if (tour.valid && tour.length < best.length) best = tour;
  }
  ASSERT_TRUE(best.valid);
  const double optimum = problems::tsp_optimal_length(instance);
  EXPECT_LE(best.length, 1.3 * optimum);
}

}  // namespace
