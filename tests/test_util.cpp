// Tests for fecim::util -- RNG determinism and distributions, statistics,
// tables, histogram, parallel_for.
#include <gtest/gtest.h>

#include <cmath>

#include <set>
#include <thread>

#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using fecim::util::Histogram;
using fecim::util::Rng;
using fecim::util::RunningStats;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 7> counts{};
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 7, kDraws / 7 * 0.1);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SpinIsBalanced) {
  Rng rng(23);
  int sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.spin();
  EXPECT_NEAR(sum / 100000.0, 0.0, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const auto v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(8, 8);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(37);
  std::array<int, 10> counts{};
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i)
    for (const auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  for (const int c : counts)
    EXPECT_NEAR(c, kTrials * 3 / 10, kTrials * 3 / 10 * 0.1);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(41);
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child_a() == child_b();
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng parent(43);
  Rng a = parent.split(5);
  Rng b = parent.split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> values{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(fecim::util::median(values), 3.0);
  EXPECT_DOUBLE_EQ(fecim::util::percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(fecim::util::percentile(values, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> values{0, 10};
  EXPECT_DOUBLE_EQ(fecim::util::percentile(values, 25), 2.5);
}

TEST(Histogram, CountsAndClamping) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(-5.0);   // clamps to bin 0
  histogram.add(0.5);
  histogram.add(9.5);
  histogram.add(100.0);  // clamps to last bin
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(9), 2u);
  EXPECT_EQ(histogram.total(), 4u);
}

TEST(Table, AlignmentAndCsv) {
  fecim::util::Table table({"name", "value"});
  table.row().add("alpha").add(1.5, 1);
  table.row().add("b").add(std::size_t{42});
  const auto text = table.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_EQ(table.csv(), "name,value\nalpha,1.5\nb,42\n");
}

TEST(Table, RejectsTooManyCells) {
  fecim::util::Table table({"only"});
  table.row().add("x");
  EXPECT_THROW(table.add("overflow"), fecim::contract_error);
}

TEST(SiFormat, PicksSensiblePrefixes) {
  EXPECT_EQ(fecim::util::si_format(2.5e-9, "J"), "2.500 nJ");
  EXPECT_EQ(fecim::util::si_format(3.2e-3, "s"), "3.200 ms");
  EXPECT_EQ(fecim::util::si_format(1.5e6, "Hz"), "1.500 MHz");
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(1000);
  fecim::util::parallel_for(1000, [&](std::size_t i) { ++counts[i]; }, 4);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      fecim::util::parallel_for(
          8, [](std::size_t i) { if (i == 3) throw std::runtime_error("boom"); },
          2),
      std::runtime_error);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  fecim::util::parallel_for(0, [](std::size_t) { FAIL(); }, 4);
}

TEST(ParallelFor, SingleFailureRethrowsOriginalType) {
  // One failing task rethrows the original exception unchanged -- callers
  // catching a specific type (contract_error, run_error, ...) keep working.
  EXPECT_THROW(
      fecim::util::parallel_for(
          8, [](std::size_t i) { if (i == 3) FECIM_EXPECTS(false); }, 2),
      fecim::contract_error);
}

TEST(ParallelFor, ConcurrentFailuresAggregate) {
  // Two tasks rendezvous on an atomic barrier, then both throw: neither
  // can win the old first-exception race, so both messages must survive in
  // the composite parallel_error.
  std::atomic<int> arrived{0};
  try {
    fecim::util::parallel_for(
        2,
        [&](std::size_t i) {
          arrived.fetch_add(1);
          while (arrived.load() < 2) std::this_thread::yield();
          throw std::runtime_error("task " + std::to_string(i) + " failed");
        },
        2);
    FAIL() << "parallel_for should have thrown";
  } catch (const fecim::util::parallel_error& e) {
    EXPECT_EQ(e.failures(), 2u);
    ASSERT_EQ(e.messages().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("2 parallel tasks failed"), std::string::npos);
    EXPECT_NE(what.find("task 0 failed"), std::string::npos);
    EXPECT_NE(what.find("task 1 failed"), std::string::npos);
  }
}

TEST(ParallelFor, PoolSurvivesThrowingJob) {
  // A failed job must leave the shared pool usable: the next parallel_for
  // still visits every index (no stuck workers, no poisoned job slot).
  try {
    fecim::util::parallel_for(
        8, [](std::size_t) { throw std::runtime_error("poison"); }, 4);
  } catch (const std::runtime_error&) {
  }
  std::vector<std::atomic<int>> counts(256);
  fecim::util::parallel_for(256, [&](std::size_t i) { ++counts[i]; }, 4);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Contracts, ExpectsThrowsContractError) {
  EXPECT_THROW(FECIM_EXPECTS(false), fecim::contract_error);
  EXPECT_NO_THROW(FECIM_EXPECTS(true));
}

}  // namespace
