// Constructive warm starts (problems/warm_start.hpp): the four heuristics
// added for knapsack, partition, TSP, and generic QUBO, plus the contract
// that every built-in problem family exposes a warm_start hook producing a
// decodable full-length spin vector.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "ising/qubo.hpp"
#include "problems/generators.hpp"
#include "problems/instances.hpp"
#include "problems/knapsack.hpp"
#include "problems/partition.hpp"
#include "problems/qubo.hpp"
#include "problems/tsp.hpp"
#include "problems/warm_start.hpp"

namespace {

using namespace fecim;

/// x = (1 - sigma) / 2: spin -1 is a set bit.
std::vector<std::uint8_t> bits_from_spins(const ising::SpinVector& spins,
                                          std::size_t count) {
  std::vector<std::uint8_t> x(count, 0);
  for (std::size_t i = 0; i < count; ++i) x[i] = spins[i] < 0 ? 1 : 0;
  return x;
}

TEST(WarmStart, GreedyKnapsackMatchesGreedyReferenceAndIsFeasible) {
  const auto instance = problems::random_knapsack(12, 5);
  const auto encoding = problems::knapsack_to_qubo(instance);
  const auto spins = problems::greedy_knapsack_spins(instance, encoding);
  // Item bits + slack bits + the with_ancilla slot, ancilla pinned to +1.
  ASSERT_EQ(spins.size(),
            encoding.num_items + encoding.num_slack_bits + 1);
  EXPECT_EQ(spins.back(), ising::Spin{1});

  const auto x = bits_from_spins(
      spins, encoding.num_items + encoding.num_slack_bits);
  const auto solution = problems::decode_knapsack(instance, encoding, x);
  EXPECT_TRUE(solution.feasible);
  EXPECT_EQ(solution.value, problems::knapsack_greedy_value(instance));
}

TEST(WarmStart, DifferencingSolvesEasyPartitionExactly) {
  // Karmarkar-Karp on {1, 2, 3, 4}: {4,1} vs {3,2} -- perfect balance.
  const std::vector<double> numbers{1, 2, 3, 4};
  const auto spins = problems::differencing_partition_spins(numbers);
  ASSERT_EQ(spins.size(), numbers.size());
  EXPECT_EQ(problems::partition_imbalance(numbers, spins), 0.0);
}

TEST(WarmStart, DifferencingBeatsOrMatchesGreedyOnRandomNumbers) {
  const auto numbers = problems::random_partition_numbers(24, 17);
  const auto spins = problems::differencing_partition_spins(numbers);
  ASSERT_EQ(spins.size(), numbers.size());
  for (const auto spin : spins) EXPECT_TRUE(spin == 1 || spin == -1);
  EXPECT_LE(problems::partition_imbalance(numbers, spins),
            problems::greedy_partition_imbalance(numbers));
}

TEST(WarmStart, DifferencingHandlesDegenerateSizes) {
  EXPECT_TRUE(problems::differencing_partition_spins({}).empty());
  const std::vector<double> one{5.0};
  const auto spins = problems::differencing_partition_spins(one);
  ASSERT_EQ(spins.size(), 1u);
  EXPECT_EQ(problems::partition_imbalance(one, spins), 5.0);
}

TEST(WarmStart, NearestNeighborTspIsAValidTourFromCityZero) {
  const auto instance = problems::random_tsp(6, 23);
  const auto encoding = problems::tsp_to_qubo(instance);
  const auto spins = problems::nearest_neighbor_tsp_spins(instance);
  const std::size_t n = instance.num_cities();
  ASSERT_EQ(spins.size(), n * n + 1);
  EXPECT_EQ(spins.back(), ising::Spin{1});

  const auto tour =
      problems::decode_tsp(instance, encoding, bits_from_spins(spins, n * n));
  EXPECT_TRUE(tour.valid);
  EXPECT_EQ(tour.violations, 0u);
  ASSERT_EQ(tour.order.size(), n);
  EXPECT_EQ(tour.order[0], 0u);  // construction starts at city 0
  // NN construction alone must not beat the NN + 2-opt reference.
  EXPECT_GE(tour.length, problems::tsp_heuristic(instance).length);
}

TEST(WarmStart, QuboDescentNeverLosesToAllZeros) {
  const auto instance = problems::random_qubo(24, 4.0, 31);
  const auto spins = problems::descent_qubo_spins(instance.model);
  const std::size_t n = instance.model.num_variables();
  ASSERT_EQ(spins.size(), n + 1);
  EXPECT_EQ(spins.back(), ising::Spin{1});

  // Descent starts from all-zeros and only takes improving flips, so its
  // value can never exceed the all-zeros value (the constant term).
  const auto x = bits_from_spins(spins, n);
  EXPECT_LE(instance.model.value(x),
            instance.model.value(std::vector<std::uint8_t>(n, 0)));
}

TEST(WarmStart, EveryBuiltInFamilyExposesADecodableWarmStart) {
  const auto graph =
      problems::random_graph(16, 4.0, problems::WeightScheme::kUnit, 3);
  std::vector<core::ProblemInstance> problems_list;
  problems_list.push_back(problems::make_maxcut_problem("ws-cut", graph, 8, 3));
  problems_list.push_back(problems::make_coloring_problem("ws-col", graph, 4));
  problems_list.push_back(problems::make_knapsack_problem(
      "ws-knap", problems::random_knapsack(10, 7)));
  problems_list.push_back(problems::make_partition_problem(
      "ws-part", problems::random_partition_numbers(12, 9)));
  problems_list.push_back(
      problems::make_tsp_problem("ws-tsp", problems::random_tsp(5, 13)));
  problems_list.push_back(problems::make_qubo_problem(
      "ws-qubo", problems::random_qubo(16, 4.0, 19), 8));

  for (const auto& problem : problems_list) {
    SCOPED_TRACE(problem.family);
    ASSERT_TRUE(problem.warm_start) << problem.family;
    const auto spins = problem.warm_start();
    ASSERT_EQ(spins.size(), problem.model->num_spins());
    const auto solution = problem.decode(spins);
    EXPECT_TRUE(std::isfinite(solution.objective));
    // The constructive heuristics build feasible configurations for every
    // family except coloring, where DSatur clamped to a fixed palette may
    // accept conflicts the annealer then repairs.
    if (problem.family != "coloring") EXPECT_TRUE(solution.feasible);
  }
}

TEST(WarmStart, MaximizeQuboWarmStartUsesTheAnnealedSense) {
  // For a maximize instance the hook must descend on the negated model:
  // its decoded objective (original units) can then only improve on the
  // all-zeros assignment.
  auto instance = problems::random_qubo(16, 4.0, 37);
  instance.maximize = true;
  const std::size_t n = instance.model.num_variables();
  const double zeros =
      instance.model.value(std::vector<std::uint8_t>(n, 0));
  const auto problem = problems::make_qubo_problem("ws-qmax", instance, 8);
  ASSERT_TRUE(problem.warm_start);
  const auto solution = problem.decode(problem.warm_start());
  EXPECT_GE(solution.objective, zeros);
}

}  // namespace
