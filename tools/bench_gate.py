#!/usr/bin/env python3
"""Gate hot-path bench smoke runs against the tracked baseline.

Usage: bench_gate.py BASELINE_JSON SMOKE_JSON

Compares every (n, engine) row the two files share, the sampler entry, and
the (n, kind) campaign rows (bench_hotpath emits its n=256 campaign rows in
every mode precisely so the smoke run has baseline rows to land on).  The
"analog-noisy" campaign rows track threads-scaling, a host property: they
gate only when smoke and baseline record the same hardware_threads, and are
printed as tracked-not-gated when the hosts differ.  The "analog-noisy-tiled" engine rows
(schema v5: the noisy sweep over a 4-tile row grid with per-tile ADC
conversions and digital partial-sum accumulation) gate exactly like the
other engine rows -- the smoke run emits its n=256 tiled row so the tiled
hot path is regression-gated alongside the monolithic one.  The
"ingestion" entry (Gset-scale parse + program, new in schema v4) is
tracked for the perf trajectory but never gated: smoke and baseline run it
at different instance sizes, so a ratio between them is meaningless.
Schema v6 adds program_seconds_cached to the ingestion entry (printed as a
cache-hit amortization factor) and the "analog-batch-cached" campaign kind
(repeated identical campaigns through one digest-keyed array cache vs
per-construction programming), which gates like every other campaign row.
Schema v7 adds the "sb-ballistic" campaign kind (simulated-bifurcation
dynamics on the same analog array, parallel vs serial replica scaling);
rows present in the smoke run but absent from the baseline -- the normal
state right after a schema bump, before the baseline is regenerated -- are
printed as tracked-not-gated instead of silently skipped.
Schema v8 adds the "analog-noisy-sharded" campaign kind (the noisy campaign
across two fork-spawned worker processes vs the in-process pool) plus a
"workers" topology field on every campaign row.  Sharded speedup mixes fork
cost with core count -- a host property like replica scaling -- so the kind
joins the same-host gating set, and tracked rows print their worker
topology (workers x threads) so cross-host trajectories stay interpretable.
A row regresses when BOTH signals drop more than the tolerance below the
baseline (default 10%, override with FECIM_BENCH_TOLERANCE=0.15 etc.):

  * speedup        -- optimized / reference ratio; robust to a uniformly
                      slow machine, sensitive to reference-side flukes;
  * absolute opt   -- optimized evals/s, or run-iterations/s for campaign
                      rows; robust to reference flukes, sensitive to
                      machine load.

Requiring both to fall catches real optimized-path regressions (which drag
both signals down) while tolerating the single-signal noise a seconds-scale
smoke run on a busy machine produces.  Exit code 1 on any regression.
"""
import json
import os
import sys


def fmt(value):
    return f"{value:,.0f}" if value >= 1000 else f"{value:.2f}"


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        smoke = json.load(f)
    tolerance = float(os.environ.get("FECIM_BENCH_TOLERANCE", "0.10"))
    floor = 1.0 - tolerance

    failures = []
    checked = 0

    def check(label, smoke_ratio, base_ratio, smoke_abs, base_abs):
        nonlocal checked
        checked += 1
        ratio_ok = smoke_ratio >= base_ratio * floor
        abs_ok = smoke_abs >= base_abs * floor
        verdict = "ok" if (ratio_ok or abs_ok) else "REGRESSION"
        print(f"  {label:<28} speedup {fmt(smoke_ratio)} vs {fmt(base_ratio)}"
              f" | opt/s {fmt(smoke_abs)} vs {fmt(base_abs)} ... {verdict}")
        if verdict != "ok":
            failures.append(label)

    base_rows = {(r["n"], r["engine"]): r for r in baseline.get("engine_eval", [])}
    for row in smoke.get("engine_eval", []):
        base = base_rows.get((row["n"], row["engine"]))
        if base is None:
            # A row new in this schema (e.g. the v7 sb-ballistic campaign)
            # has nothing to compare against until the baseline is
            # regenerated -- print it so the number is on the record.
            print(f"  n={row['n']} {row['engine']}: speedup "
                  f"{fmt(row['speedup'])}, opt/s "
                  f"{fmt(row['evals_per_sec_optimized'])}"
                  " ... tracked, not gated (no baseline row)")
            continue
        check(f"n={row['n']} {row['engine']}", row["speedup"], base["speedup"],
              row["evals_per_sec_optimized"], base["evals_per_sec_optimized"])

    def campaign_throughput(row):
        wall = row.get("wall_seconds_optimized", 0.0)
        if wall <= 0.0:
            return 0.0
        return row["runs"] * row["iterations"] / wall

    base_campaigns = {(r["n"], r.get("kind", "analog")): r
                      for r in baseline.get("campaign", [])}
    same_host = (baseline.get("hardware_threads") is not None
                 and baseline.get("hardware_threads")
                 == smoke.get("hardware_threads"))
    def topology(row):
        """Worker topology of a campaign row: '2w x 1t' for a sharded row,
        plain '4t' for an in-process one (workers absent or 0)."""
        workers = row.get("workers", 0)
        threads = row.get("threads", "?")
        if workers:
            return f"{workers}w x {threads}t"
        return f"{threads}t"

    for row in smoke.get("campaign", []):
        kind = row.get("kind", "analog")
        base = base_campaigns.get((row["n"], kind))
        if base is None:
            print(f"  campaign n={row['n']} {kind} [{topology(row)}]: speedup "
                  f"{fmt(row['speedup'])}, opt run-iters/s "
                  f"{fmt(campaign_throughput(row))}"
                  " ... tracked, not gated (no baseline row)")
            continue
        if (kind in ("analog-noisy", "sb-ballistic", "analog-noisy-sharded")
                and not same_host):
            # These rows' speedup is a host property -- replica scaling
            # (threads=N vs threads=1) or process sharding (forked workers
            # vs in-process) -- not a property of the code, so they gate
            # only when both files record the same hardware_threads.  On a
            # different host they would fail spuriously; print them (with
            # both topologies) for the trajectory instead.
            print(f"  campaign n={row['n']} {kind} [{topology(row)}]: speedup "
                  f"{fmt(row['speedup'])} vs {fmt(base['speedup'])} "
                  f"(baseline from a {topology(base)} host)"
                  " ... tracked, not gated (hardware_threads differ)")
            continue
        check(f"campaign n={row['n']} {kind}",
              row["speedup"], base["speedup"],
              campaign_throughput(row), campaign_throughput(base))

    if "ingestion" in smoke:
        row = smoke["ingestion"]
        cached = row.get("program_seconds_cached", 0.0)
        cold = row.get("program_seconds", 0.0)
        hit = (f", cache-hit reprogram {cold / cached:,.0f}x faster"
               if cached > 0.0 and cold > 0.0 else "")
        print(f"  ingestion n={row['n']} m={row['edges']}: "
              f"{fmt(row.get('edges_per_sec_parse', 0.0))} edges/s parse"
              f"{hit} ... tracked, not gated")

    if "sampler" in smoke and "sampler" in baseline:
        check("normal sampler", smoke["sampler"]["speedup"],
              baseline["sampler"]["speedup"],
              smoke["sampler"]["normals_per_sec_ziggurat"],
              baseline["sampler"]["normals_per_sec_ziggurat"])

    if checked == 0:
        print("bench_gate: no comparable rows between smoke and baseline",
              file=sys.stderr)
        return 1
    if failures:
        print(f"bench_gate: {len(failures)} regression(s) beyond "
              f"{tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"bench_gate: {checked} row(s) within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
