#!/usr/bin/env bash
# Single entry point for the repo's correctness + performance gate:
#   1. configure + build the release-with-assertions preset (library, tests,
#      benches, examples, tools),
#   2. run the test suite -- the tier-1 fast loop (ctest -L tier1) by
#      default, every label (tier1 + differential + slow) under --full,
#   3. smoke-run the hot-path benchmark and gate its speedups against the
#      tracked baseline in BENCH_hotpath.json (tools/bench_gate.py; >10%
#      regressions on both signals fail, FECIM_BENCH_TOLERANCE overrides;
#      campaign rows and the tiled analog-noisy row are gated alongside the
#      engine rows),
#   4. smoke-run the quickstart example and fecim_solve on every COP family
#      (maxcut, coloring, knapsack, partition, tsp, qubo), both generated
#      and file-backed (examples/data/ fixtures, one per file format,
#      loaded through the mmap ingestion path) plus one --batch manifest
#      campaign, so the README's build-and-run instructions, the unified
#      solver pipeline, and the ingestion subsystem stay honest,
#   5. smoke the serving path (docs/serving.md): a duplicate-entry manifest
#      through --batch and --serve must report exactly one array build
#      (digest-keyed cache), stream identical rows, and accept per-job
#      flag overrides from stdin,
#   6. smoke the simulated-bifurcation backend (docs/algorithms.md) on two
#      families plus one greedy warm-started run, asserting the CSV
#      algorithm column records the dynamics that ran,
#   7. smoke multi-process sharding (docs/sharding.md): the same campaign at
#      --workers 1 and --workers 3 must emit byte-identical CSV, a campaign
#      that loses a worker (--inject-kill-worker) must recover
#      bit-identically, and a --resume from the journal that recovery wrote
#      must reproduce the CSV without re-executing any run,
#   8. smoke the constructive warm starts: --init greedy must run on every
#      COP family (the greedy/DSatur/density/differencing/NN/descent
#      heuristics in problems/warm_start.hpp).
#
# Under --sanitize the whole suite runs ASan+UBSan-instrumented, which
# includes the mmap LineParser differential in test_instance_io (unaligned
# tails, empty files, files without a trailing newline).
#
# Usage: tools/check.sh [--full] [--full-bench] [--sanitize]
#   --full         run the complete ctest suite (every label) instead of
#                  the tier-1 fast loop; implied by --full-bench.
#   --full-bench   run the complete suite, then additionally run
#                  bench_hotpath at its full sizes, rewriting
#                  BENCH_hotpath.json in the repo root (do this when a PR
#                  intentionally moves hot-path performance).
#   --sanitize     build the asan-ubsan preset (address + undefined-behavior
#                  sanitizers, no recovery) and run the whole suite under it
#                  -- including the randomized engine-vs-reference
#                  differential layer (ctest -L differential), which is the
#                  memory-safety workout of the vectorized sweep -- then
#                  exit; sanitized binaries are too slow for the bench gate
#                  to be meaningful.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

full=0
full_bench=0
sanitize=0
for arg in "$@"; do
  case "${arg}" in
    --full) full=1 ;;
    --full-bench) full_bench=1; full=1 ;;
    --sanitize) sanitize=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ "${sanitize}" == 1 ]]; then
  cmake --preset asan-ubsan
  cmake --build build-asan -j"$(nproc)"
  # Whole suite, then the differential layer by its label so its presence
  # is asserted (an empty -L match is a configuration bug, not a pass).
  ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -L differential \
    --no-tests=error
  echo "check.sh: sanitized test suite (incl. differential layer) OK"
  exit 0
fi

if [[ -f CMakePresets.json ]]; then
  cmake --preset release
else
  cmake -B build -S .
fi
cmake --build build -j"$(nproc)"

if [[ "${full}" == 1 ]]; then
  ctest --test-dir build --output-on-failure -j"$(nproc)"
else
  # Fast edit loop: the tier-1 invariant suite only.  The differential and
  # slow labels run under --full / --full-bench / --sanitize.
  ctest --test-dir build --output-on-failure -j"$(nproc)" -L tier1 \
    --no-tests=error
fi

# Smoke configuration: smallest size, few iterations; the JSON goes to the
# build tree (never the tracked baseline) for the regression gate.
smoke_json="build/bench_smoke.json"
FECIM_BENCH_SMOKE=1 FECIM_BENCH_OUT="${smoke_json}" ./build/bench/bench_hotpath

if command -v python3 >/dev/null 2>&1; then
  python3 tools/bench_gate.py BENCH_hotpath.json "${smoke_json}"
else
  echo "check.sh: python3 not found; skipping bench regression gate" >&2
fi

# Example smoke: quickstart exercises the whole stack (problem -> mapping ->
# analog engine -> annealer -> cost ledger) in under a second.
./build/examples/quickstart >/dev/null
echo "check.sh: example smoke OK"

# Solver smoke: every COP family end to end through the unified campaign
# pipeline (tiny budgets -- this checks wiring, not solution quality).
for family in maxcut coloring knapsack partition tsp qubo; do
  ./build/tools/fecim_solve --problem "${family}" --nodes 48 --items 8 \
    --numbers 12 --cities 5 --iterations 500 --runs 2 --threads 2 \
    --csv >/dev/null
done
echo "check.sh: fecim_solve family smoke OK"

# Tiled-execution smoke: one campaign over a 4-band tile grid exercises the
# TilePlan path end to end (per-tile conversions, partial-sum accumulation,
# the --tile-rows/--tile-cols plumbing).
./build/tools/fecim_solve --nodes 96 --tile-rows 24 --tile-cols 512 \
  --iterations 500 --runs 2 --threads 2 --csv >/dev/null
echo "check.sh: tiled execution smoke OK"

# Ingestion smoke: every family loads its file format from the tracked
# fixtures, and one --batch manifest runs a multi-instance campaign.
declare -A fixture=(
  [maxcut]=examples/data/maxcut_petersen.gset
  [coloring]=examples/data/coloring_petersen.col
  [knapsack]=examples/data/knapsack_p01.kp
  [partition]=examples/data/partition_perfect.txt
  [tsp]=examples/data/tsp_pentagon.xy
  [tsplib]=examples/data/tsp_ulysses5.tsp
  [qubo]=examples/data/qubo_mis8.qubo
)
for family in "${!fixture[@]}"; do
  problem="${family%lib}"  # the tsplib fixture loads through --problem tsp
  ./build/tools/fecim_solve --problem "${problem}" --file "${fixture[$family]}" \
    --iterations 300 --runs 2 --threads 2 --csv >/dev/null
done
./build/tools/fecim_solve --batch examples/data/campaign.batch \
  --iterations 300 --runs 2 --threads 2 --csv >/dev/null
echo "check.sh: file-backed ingestion smoke OK"

# Fault-tolerance smoke (docs/robustness.md): a journaled campaign resumed
# from its complete journal reproduces the CSV byte for byte; an injected
# failure degrades the campaign instead of killing it; a batch with one
# malformed instance exits non-zero but still reports every row.
ft_journal="build/smoke_journal.txt"
rm -f "${ft_journal}"
./build/tools/fecim_solve --nodes 48 --iterations 400 --runs 4 --threads 2 \
  --journal "${ft_journal}" --csv > build/smoke_ft_run.csv
./build/tools/fecim_solve --nodes 48 --iterations 400 --runs 4 --threads 2 \
  --journal "${ft_journal}" --resume --csv > build/smoke_ft_resume.csv
cmp build/smoke_ft_run.csv build/smoke_ft_resume.csv
./build/tools/fecim_solve --nodes 48 --iterations 400 --runs 4 --threads 2 \
  --inject-fail 1 --retries 0 --csv | grep -q ",0.750," \
  || { echo "check.sh: injected failure did not degrade completed_rate" >&2; exit 1; }
ft_batch_dir="build/smoke_ft_batch"
mkdir -p "${ft_batch_dir}"
echo "not a gset file" > "${ft_batch_dir}/bad.gset"
printf 'maxcut %s good\nmaxcut %s bad\n' \
  "${repo_root}/examples/data/maxcut_petersen.gset" \
  "${ft_batch_dir}/bad.gset" > "${ft_batch_dir}/manifest.batch"
if ./build/tools/fecim_solve --batch "${ft_batch_dir}/manifest.batch" \
  --iterations 300 --runs 2 --threads 2 --csv > "${ft_batch_dir}/out.csv" \
  2>/dev/null; then
  echo "check.sh: batch with a malformed instance should exit non-zero" >&2
  exit 1
fi
grep -q '^good,' "${ft_batch_dir}/out.csv" \
  || { echo "check.sh: surviving batch row missing" >&2; exit 1; }
grep -q '^bad,.*,failed$' "${ft_batch_dir}/out.csv" \
  || { echo "check.sh: failed batch row missing" >&2; exit 1; }
echo "check.sh: fault-tolerance smoke OK"

# Serving smoke (docs/serving.md): a manifest listing the same instance
# twice must program its crossbar exactly once -- the duplicate entry is a
# digest-keyed cache hit -- in both --batch and --serve modes, and the
# serve loop streams one CSV row per job line.
cache_dir="build/smoke_cache"
mkdir -p "${cache_dir}"
printf 'maxcut %s twin-a\nmaxcut %s twin-b\n' \
  "${repo_root}/examples/data/maxcut_petersen.gset" \
  "${repo_root}/examples/data/maxcut_petersen.gset" \
  > "${cache_dir}/twins.batch"
./build/tools/fecim_solve --batch "${cache_dir}/twins.batch" \
  --iterations 300 --runs 2 --threads 2 --csv \
  > "${cache_dir}/batch.csv" 2> "${cache_dir}/batch.err"
grep -q 'array cache: 1 built, 1 hits' "${cache_dir}/batch.err" \
  || { echo "check.sh: duplicate batch entries did not share one array build" >&2
       cat "${cache_dir}/batch.err" >&2; exit 1; }
./build/tools/fecim_solve --serve "${cache_dir}/twins.batch" \
  --iterations 300 --runs 2 --threads 2 \
  > "${cache_dir}/serve.csv" 2> "${cache_dir}/serve.err"
grep -q 'array cache: 1 built, 1 hits' "${cache_dir}/serve.err" \
  || { echo "check.sh: served duplicate jobs did not share one array build" >&2
       cat "${cache_dir}/serve.err" >&2; exit 1; }
grep -q '^twin-a,' "${cache_dir}/serve.csv" \
  && grep -q '^twin-b,' "${cache_dir}/serve.csv" \
  || { echo "check.sh: serve loop missing per-job rows" >&2; exit 1; }
cmp <(tail -n +2 "${cache_dir}/batch.csv") \
    <(tail -n +2 "${cache_dir}/serve.csv") \
  || { echo "check.sh: --serve rows differ from --batch rows" >&2; exit 1; }
# Per-job flag overrides parse and apply (a job-level seed change must not
# be rejected and must reuse the shared thread pool/cache plumbing).
printf 'maxcut - gen --nodes 48 --seed 9\n' | \
  ./build/tools/fecim_solve --serve - --iterations 300 --runs 2 --threads 2 \
  > "${cache_dir}/stdin.csv" 2>/dev/null
grep -q '^gen,' "${cache_dir}/stdin.csv" \
  || { echo "check.sh: stdin serve job with overrides failed" >&2; exit 1; }
echo "check.sh: serving smoke OK"

# Solver-dynamics smoke (docs/algorithms.md): the SB backend end to end on
# an unconstrained and a constrained family, plus a greedy warm-started
# run through --init; the CSV algorithm column must record the dynamics.
./build/tools/fecim_solve --nodes 48 --algorithm sb-ballistic \
  --iterations 50 --runs 2 --threads 2 --csv | grep -q ',sb-ballistic,' \
  || { echo "check.sh: sb-ballistic maxcut smoke failed" >&2; exit 1; }
./build/tools/fecim_solve --problem coloring --nodes 12 \
  --algorithm sb-discrete --iterations 80 --runs 2 --threads 2 --csv \
  | grep -q ',sb-discrete,' \
  || { echo "check.sh: sb-discrete coloring smoke failed" >&2; exit 1; }
./build/tools/fecim_solve --nodes 48 --algorithm sb-ballistic --init greedy \
  --iterations 50 --runs 2 --threads 2 --csv >/dev/null \
  || { echo "check.sh: greedy warm-started SB smoke failed" >&2; exit 1; }
echo "check.sh: solver-dynamics smoke OK"

# Sharded-campaign smoke (docs/sharding.md): fork-based worker processes
# must be invisible in the results.  FECIM_THREADS=4 on every leg so the
# hardware-thread cap never bites on small CI hosts (and all legs agree on
# the CSV threads column).
shard_dir="build/smoke_shard"
mkdir -p "${shard_dir}"
shard_args=(--problem partition --numbers 16 --iterations 400 --runs 5)
FECIM_THREADS=4 ./build/tools/fecim_solve "${shard_args[@]}" --workers 1 \
  --csv > "${shard_dir}/w1.csv"
FECIM_THREADS=4 ./build/tools/fecim_solve "${shard_args[@]}" --workers 3 \
  --csv > "${shard_dir}/w3.csv"
cmp "${shard_dir}/w1.csv" "${shard_dir}/w3.csv" \
  || { echo "check.sh: --workers 1 and --workers 3 CSV differ" >&2; exit 1; }
# Kill worker 1 mid-campaign: the parent must detect the dead pipe and
# re-execute the lost runs bit-identically.
rm -f "${shard_dir}/kill.journal"*
FECIM_THREADS=4 ./build/tools/fecim_solve "${shard_args[@]}" --workers 3 \
  --journal "${shard_dir}/kill.journal" --inject-kill-worker 1 \
  --csv > "${shard_dir}/kill.csv"
cmp "${shard_dir}/w1.csv" "${shard_dir}/kill.csv" \
  || { echo "check.sh: kill-worker recovery was not bit-identical" >&2; exit 1; }
# Resume from the journal that recovery wrote, with failure injection armed
# on every run: identical CSV proves every record came from the journal and
# nothing re-executed.
FECIM_THREADS=4 ./build/tools/fecim_solve "${shard_args[@]}" --workers 3 \
  --journal "${shard_dir}/kill.journal" --resume --inject-fail 0,1,2,3,4 \
  --csv > "${shard_dir}/resume.csv"
cmp "${shard_dir}/w1.csv" "${shard_dir}/resume.csv" \
  || { echo "check.sh: sharded resume did not reproduce the campaign" >&2; exit 1; }
echo "check.sh: sharded-campaign smoke OK"

# Warm-start smoke: every family's constructive heuristic through --init
# greedy (greedy cut, DSatur, density fill, differencing, nearest
# neighbour, 1-opt descent).
for family in maxcut coloring knapsack partition tsp qubo; do
  ./build/tools/fecim_solve --problem "${family}" --nodes 48 --items 8 \
    --numbers 12 --cities 5 --init greedy --iterations 300 --runs 2 \
    --threads 2 --csv >/dev/null \
    || { echo "check.sh: --init greedy failed for ${family}" >&2; exit 1; }
done
echo "check.sh: warm-start smoke OK"

if [[ "${full_bench}" == 1 ]]; then
  ./build/bench/bench_hotpath
fi

echo "check.sh: OK"
