#!/usr/bin/env bash
# Single entry point for the repo's correctness + performance gate:
#   1. configure + build the release-with-assertions preset,
#   2. run the full ctest suite,
#   3. smoke-run the hot-path benchmark (reduced sizes) so perf regressions
#      that break the bench itself are caught before a full campaign.
#
# Usage: tools/check.sh [--full-bench]
#   --full-bench   run bench_hotpath at its full sizes (writes
#                  BENCH_hotpath.json in the repo root) instead of the smoke
#                  configuration.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

full_bench=0
for arg in "$@"; do
  case "${arg}" in
    --full-bench) full_bench=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

if [[ -f CMakePresets.json ]]; then
  cmake --preset release
else
  cmake -B build -S .
fi
cmake --build build -j"$(nproc)"

ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${full_bench}" == 1 ]]; then
  ./build/bench/bench_hotpath
else
  # Smoke configuration: smallest size, few iterations, no JSON rewrite.
  FECIM_BENCH_SMOKE=1 ./build/bench/bench_hotpath
fi

echo "check.sh: OK"
