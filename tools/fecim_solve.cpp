// fecim_solve -- command-line Max-Cut solver on the ferroelectric CiM
// in-situ annealer.
//
// usage:
//   fecim_solve [options] [gset-file]
//
// With no file, a Gset-style instance is generated (--nodes, --seed).
//
// options:
//   --annealer this-work|this-work-ideal|cim-fpga|cim-asic|mesa
//   --iterations N       annealing iterations per run        [auto by size]
//   --runs N             independent Monte-Carlo runs        [10]
//   --flips N            spins flipped per iteration (|F|)   [2]
//   --gain X             acceptance comparator gain          [16]
//   --bits N             weight quantization bits            [8]
//   --nodes N            generated-instance size             [800]
//   --seed N             instance/run base seed              [1]
//   --csv                emit a CSV row instead of the report
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/gset_io.hpp"
#include "util/table.hpp"

using namespace fecim;

namespace {

struct Options {
  std::string file;
  std::string annealer = "this-work";
  std::size_t iterations = 0;  // 0 = auto
  std::size_t runs = 10;
  std::size_t flips = 2;
  double gain = 16.0;
  int bits = 8;
  std::size_t nodes = 800;
  std::uint64_t seed = 1;
  bool csv = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--annealer KIND] [--iterations N] [--runs N] "
               "[--flips N]\n"
               "          [--gain X] [--bits N] [--nodes N] [--seed N] "
               "[--csv] [gset-file]\n"
               "KIND: this-work | this-work-ideal | cim-fpga | cim-asic | "
               "mesa\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--annealer") options.annealer = next();
    else if (arg == "--iterations") options.iterations = std::strtoull(next(), nullptr, 10);
    else if (arg == "--runs") options.runs = std::strtoull(next(), nullptr, 10);
    else if (arg == "--flips") options.flips = std::strtoull(next(), nullptr, 10);
    else if (arg == "--gain") options.gain = std::strtod(next(), nullptr);
    else if (arg == "--bits") options.bits = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--nodes") options.nodes = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seed") options.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--csv") options.csv = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else options.file = arg;
  }
  return options;
}

core::AnnealerKind kind_from_name(const std::string& name) {
  if (name == "this-work") return core::AnnealerKind::kThisWork;
  if (name == "this-work-ideal") return core::AnnealerKind::kThisWorkIdeal;
  if (name == "cim-fpga") return core::AnnealerKind::kCimFpga;
  if (name == "cim-asic") return core::AnnealerKind::kCimAsic;
  if (name == "mesa") return core::AnnealerKind::kMesa;
  std::fprintf(stderr, "unknown annealer '%s'\n", name.c_str());
  std::exit(2);
}

std::size_t auto_iterations(std::size_t nodes) {
  // The paper's budgets by size class.
  if (nodes <= 800) return 700;
  if (nodes <= 1000) return 1000;
  if (nodes <= 2000) return 10000;
  return 100000;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);

  problems::Graph graph =
      options.file.empty()
          ? problems::gset_like_instance(options.nodes, options.seed)
          : problems::read_gset_file(options.file);
  const std::string name =
      options.file.empty() ? "generated-" + std::to_string(options.nodes)
                           : options.file;

  auto instance = core::make_maxcut_instance(name, std::move(graph), 48,
                                             options.seed);
  core::StandardSetup setup;
  setup.iterations = options.iterations > 0
                         ? options.iterations
                         : auto_iterations(instance.model->num_spins());
  setup.flips_per_iteration = options.flips;
  setup.acceptance_gain = options.gain;
  setup.bits = options.bits;

  const auto kind = kind_from_name(options.annealer);
  const auto annealer = core::make_annealer(kind, instance.model, setup);

  core::CampaignConfig campaign;
  campaign.runs = options.runs;
  campaign.base_seed = options.seed;
  const auto result = core::run_maxcut_campaign(*annealer, instance, campaign);

  if (options.csv) {
    std::printf("instance,annealer,runs,iterations,best_cut,mean_cut,"
                "reference,success_rate,energy_j,time_s\n");
    std::printf("%s,%s,%zu,%zu,%.0f,%.1f,%.0f,%.3f,%.6g,%.6g\n",
                instance.name.c_str(), options.annealer.c_str(), options.runs,
                setup.iterations, result.cut.max(), result.cut.mean(),
                instance.reference_cut, result.success_rate,
                result.energy.mean(), result.time.mean());
    return 0;
  }

  std::printf("instance   : %s (%zu vertices, %zu edges)\n",
              instance.name.c_str(), instance.graph->num_vertices(),
              instance.graph->num_edges());
  std::printf("annealer   : %s, %zu iterations x %zu runs, |F|=%zu, "
              "gain=%.1f, k=%d bits\n",
              core::annealer_kind_name(kind), setup.iterations, options.runs,
              options.flips, options.gain, options.bits);
  std::printf("cut        : best %.0f / mean %.1f / reference %.0f "
              "(normalized %.3f)\n",
              result.cut.max(), result.cut.mean(), instance.reference_cut,
              result.normalized_cut.mean());
  std::printf("success    : %.0f %% of runs reached 90 %% of reference\n",
              result.success_rate * 100.0);
  std::printf("hw cost    : %s, %s per run (mean)\n",
              util::si_format(result.energy.mean(), "J").c_str(),
              util::si_format(result.time.mean(), "s").c_str());
  std::printf("adc events : %llu conversions total across runs\n",
              static_cast<unsigned long long>(
                  result.total_ledger.adc_conversions));
  return 0;
}
