// fecim_solve -- command-line combinatorial-optimization solver on the
// ferroelectric CiM in-situ annealer.
//
// usage:
//   fecim_solve [options] [gset-file]
//
// One solver pipeline for all five built-in COP families: the chosen family
// is encoded into an annealer-ready Ising model (problems/instances.hpp),
// the campaign runner executes --runs independent replicas in parallel
// across --threads workers, and the report shows the decoded domain
// objective plus feasibility.  A gset-file (Max-Cut only) overrides the
// generated instance.
//
// options:
//   --problem F          maxcut|coloring|knapsack|partition|tsp  [maxcut]
//   --annealer this-work|this-work-ideal|cim-fpga|cim-asic|mesa
//   --iterations N       annealing iterations per run        [auto by family]
//   --runs N             independent Monte-Carlo runs        [10]
//   --threads N          parallel replica workers (0 = all cores)  [0]
//   --flips N            spins flipped per iteration (|F|)   [2]
//   --gain X             acceptance comparator gain          [auto by family]
//   --bits N             weight quantization bits            [8]
//   --seed N             instance/run base seed              [1]
//   --csv                emit a CSV row instead of the report
// family-specific:
//   --nodes N            maxcut/coloring graph size          [800 / 16]
//   --degree X           coloring average degree             [2.5]
//   --colors K           coloring palette (0 = greedy bound) [0]
//   --items N            knapsack item count                 [12]
//   --capacity W         knapsack capacity (0 = 40 % of total weight) [0]
//   --numbers N          partition set size                  [24]
//   --cities N           tsp city count                      [6]
//   --penalty A          constraint penalty; 0 = auto-tune for knapsack
//                        (max value + 1) and tsp (n * max distance),
//                        fixed default 2 for coloring        [0]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "problems/generators.hpp"
#include "problems/gset_io.hpp"
#include "problems/instances.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace fecim;

namespace {

struct Options {
  std::string file;
  std::string problem = "maxcut";
  std::string annealer = "this-work";
  std::size_t iterations = 0;  // 0 = auto
  std::size_t runs = 10;
  std::size_t threads = 0;  // 0 = util::worker_threads()
  std::size_t flips = 2;
  double gain = 0.0;  // 0 = auto (16 unconstrained, 4 constrained)
  int bits = 8;
  std::uint64_t seed = 1;
  bool csv = false;
  // Family-specific instance knobs.
  std::size_t nodes = 0;  // 0 = family default
  double degree = 2.5;
  std::size_t colors = 0;  // 0 = greedy palette
  std::size_t items = 12;
  double capacity = 0.0;  // 0 = auto
  std::size_t numbers = 24;
  std::size_t cities = 6;
  double penalty = 0.0;  // 0 = auto
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [gset-file]\n"
      "  --problem F       maxcut|coloring|knapsack|partition|tsp [maxcut]\n"
      "  --annealer KIND   this-work | this-work-ideal | cim-fpga | cim-asic"
      " | mesa\n"
      "  --iterations N  --runs N  --threads N  --flips N  --gain X\n"
      "  --bits N  --seed N  --csv\n"
      "family-specific: --nodes N --degree X --colors K --items N\n"
      "  --capacity W --numbers N --cities N --penalty A\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    auto next_size = [&] { return std::strtoull(next(), nullptr, 10); };
    if (arg == "--problem") options.problem = next();
    else if (arg == "--annealer") options.annealer = next();
    else if (arg == "--iterations") options.iterations = next_size();
    else if (arg == "--runs") options.runs = next_size();
    else if (arg == "--threads") options.threads = next_size();
    else if (arg == "--flips") options.flips = next_size();
    else if (arg == "--gain") options.gain = std::strtod(next(), nullptr);
    else if (arg == "--bits") options.bits = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--seed") options.seed = next_size();
    else if (arg == "--csv") options.csv = true;
    else if (arg == "--nodes") options.nodes = next_size();
    else if (arg == "--degree") options.degree = std::strtod(next(), nullptr);
    else if (arg == "--colors") options.colors = next_size();
    else if (arg == "--items") options.items = next_size();
    else if (arg == "--capacity") options.capacity = std::strtod(next(), nullptr);
    else if (arg == "--numbers") options.numbers = next_size();
    else if (arg == "--cities") options.cities = next_size();
    else if (arg == "--penalty") options.penalty = std::strtod(next(), nullptr);
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else options.file = arg;
  }
  return options;
}

core::AnnealerKind kind_from_name(const std::string& name) {
  if (name == "this-work") return core::AnnealerKind::kThisWork;
  if (name == "this-work-ideal") return core::AnnealerKind::kThisWorkIdeal;
  if (name == "cim-fpga") return core::AnnealerKind::kCimFpga;
  if (name == "cim-asic") return core::AnnealerKind::kCimAsic;
  if (name == "mesa") return core::AnnealerKind::kMesa;
  std::fprintf(stderr, "unknown annealer '%s'\n", name.c_str());
  std::exit(2);
}

/// Build the requested family's instance from the CLI knobs (or the Gset
/// file for Max-Cut).
core::ProblemInstance make_problem(const Options& options) {
  const auto seed = options.seed;
  if (options.problem == "maxcut") {
    const std::size_t nodes = options.nodes > 0 ? options.nodes : 800;
    problems::Graph graph =
        options.file.empty() ? problems::gset_like_instance(nodes, seed)
                             : problems::read_gset_file(options.file);
    const std::string name = options.file.empty()
                                 ? "generated-" + std::to_string(nodes)
                                 : options.file;
    return problems::make_maxcut_problem(name, std::move(graph), 48, seed);
  }
  if (!options.file.empty()) {
    std::fprintf(stderr, "gset files apply to --problem maxcut only\n");
    std::exit(2);
  }
  if (options.problem == "coloring") {
    const std::size_t nodes = options.nodes > 0 ? options.nodes : 16;
    auto graph = problems::random_graph(nodes, options.degree,
                                        problems::WeightScheme::kUnit, seed);
    return problems::make_coloring_problem(
        "coloring-" + std::to_string(nodes), std::move(graph), options.colors,
        options.penalty > 0.0 ? options.penalty : 2.0);
  }
  if (options.problem == "knapsack") {
    return problems::make_knapsack_problem(
        "knapsack-" + std::to_string(options.items),
        problems::random_knapsack(options.items, seed, options.capacity),
        options.penalty);
  }
  if (options.problem == "partition") {
    return problems::make_partition_problem(
        "partition-" + std::to_string(options.numbers),
        problems::random_partition_numbers(options.numbers, seed));
  }
  if (options.problem == "tsp") {
    return problems::make_tsp_problem(
        "tsp-" + std::to_string(options.cities),
        problems::random_tsp(options.cities, seed), options.penalty);
  }
  std::fprintf(stderr, "unknown problem '%s'\n", options.problem.c_str());
  std::exit(2);
}

std::size_t auto_iterations(const std::string& family,
                            std::size_t num_spins) {
  // Constraint-encoded families (one-hot / slack penalties) need a longer
  // budget than the paper's Max-Cut size classes at equal spin count.
  if (family == "coloring" || family == "tsp") return 20000;
  if (family == "knapsack") return 30000;
  // The paper's Max-Cut budgets by size class (partition rides along).
  if (num_spins <= 800) return 700;
  if (num_spins <= 1000) return 1000;
  if (num_spins <= 2000) return 10000;
  return 100000;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);

  const auto problem = make_problem(options);
  const bool constrained =
      problem.family == "coloring" || problem.family == "knapsack" ||
      problem.family == "tsp";

  core::StandardSetup setup;
  setup.iterations =
      options.iterations > 0
          ? options.iterations
          : auto_iterations(problem.family, problem.model->num_spins());
  setup.flips_per_iteration = options.flips;
  // Constraint landscapes prefer a softer comparator and tighter
  // program-verify variation so penalty weights survive programming (see
  // docs/problems.md).
  setup.acceptance_gain =
      options.gain > 0.0 ? options.gain : (constrained ? 4.0 : 16.0);
  if (constrained) setup.variation = {0.01, 0.02, 0.0, 0.0};
  setup.bits = options.bits;

  const auto kind = kind_from_name(options.annealer);
  const auto annealer = core::make_annealer(kind, problem.model, setup);

  core::CampaignConfig campaign;
  campaign.runs = options.runs;
  campaign.base_seed = options.seed;
  campaign.threads = options.threads;
  const auto result = core::run_campaign(*annealer, problem, campaign);

  // best_objective is NaN with zero feasible runs; mirror that for the mean
  // so the CSV never shows a literal 0 that would read as a perfect
  // imbalance or an empty packing.
  const double best = result.best_objective(problem.sense);
  const bool none_feasible = result.objective.empty();
  const double mean_objective =
      none_feasible ? std::numeric_limits<double>::quiet_NaN()
                    : result.objective.mean();
  // Report the resolved worker count (threads=0 means "all cores"), never
  // the raw config value.
  const std::size_t threads =
      util::resolved_parallel_threads(options.runs, options.threads);
  if (options.csv) {
    std::printf(
        "instance,family,annealer,runs,iterations,threads,best_objective,"
        "mean_objective,reference,feasible_rate,success_rate,energy_j,"
        "time_s\n");
    std::printf("%s,%s,%s,%zu,%zu,%zu,%.6g,%.6g,%.6g,%.3f,%.3f,%.6g,%.6g\n",
                problem.name.c_str(), problem.family.c_str(),
                options.annealer.c_str(), options.runs, setup.iterations,
                threads, best, mean_objective,
                problem.reference_objective, result.feasible_rate,
                result.success_rate, result.energy.mean(),
                result.time.mean());
    return 0;
  }

  std::printf("instance   : %s [%s] (%s; %zu spins)\n", problem.name.c_str(),
              problem.family.c_str(), problem.summary.c_str(),
              problem.model->num_spins());
  std::printf("annealer   : %s, %zu iterations x %zu runs (%zu threads), "
              "|F|=%zu, gain=%.1f, k=%d bits\n",
              core::annealer_kind_name(kind), setup.iterations, options.runs,
              threads, options.flips, setup.acceptance_gain, options.bits);
  if (result.objective.empty()) {
    std::printf("%-11s: no feasible run (mean violations %.1f)\n",
                problem.objective_label.c_str(), result.violations.mean());
  } else {
    std::printf("%-11s: best %.6g / mean %.6g / reference %.6g (%s)\n",
                problem.objective_label.c_str(), best,
                result.objective.mean(), problem.reference_objective,
                core::objective_sense_name(problem.sense));
  }
  std::printf("feasible   : %.0f %% of runs satisfied every constraint\n",
              result.feasible_rate * 100.0);
  std::printf("success    : %.0f %% of runs within %.0f %% of reference\n",
              result.success_rate * 100.0,
              (1.0 - campaign.success_threshold) * 100.0);
  std::printf("hw cost    : %s, %s per run (mean)\n",
              util::si_format(result.energy.mean(), "J").c_str(),
              util::si_format(result.time.mean(), "s").c_str());
  std::printf("adc events : %llu conversions total across runs\n",
              static_cast<unsigned long long>(
                  result.total_ledger.adc_conversions));
  return 0;
}
