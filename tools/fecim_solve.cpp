// fecim_solve -- command-line combinatorial-optimization solver on the
// ferroelectric CiM in-situ annealer.
//
// usage:
//   fecim_solve [options] [instance-file]
//
// One solver pipeline for all six COP families: the chosen family is
// encoded into an annealer-ready Ising model (problems/instances.hpp), the
// campaign runner executes --runs independent replicas in parallel across
// --threads workers, and the report shows the decoded domain objective plus
// feasibility.  Every family loads external benchmark instances via
// --file (or the positional instance-file); without a file a seeded
// generator builds the instance.  --batch runs a whole manifest of
// instances through one process (and one persistent thread pool);
// --serve keeps the process alive and streams result rows per job line.
//
// Both multi-job modes share one job grammar and one execution path
// (docs/serving.md): each significant line is
//     <family> <path> [name] [--flag value ...]
// where <path> of "-" means "generate the instance from the seed", and the
// trailing overrides rebind any shared per-campaign flag (--iterations,
// --runs, --seed, --annealer, --tile-rows, family knobs, ...) for that job
// only.  All jobs in a process share the persistent worker pool AND the
// digest-keyed programmed-array cache (crossbar/array_cache.hpp): jobs
// that resolve to the same quantized couplings + mapping + device +
// variation seed + tile shape reuse one programmed array, and the final
// stderr line reports the cache's built/hit counters.
//
// options:
//   --problem F          maxcut|coloring|knapsack|partition|tsp|qubo [maxcut]
//   --file PATH          load the instance from a file (format per family:
//                        maxcut Gset, coloring DIMACS .col, knapsack/
//                        partition instance_io.hpp formats, tsp coordinate
//                        list or TSPLIB EUC_2D, qubo QPLIB-subset triplets)
//   --batch MANIFEST     run every job line of the manifest as its own
//                        campaign (paths resolve relative to the manifest;
//                        one row per instance)
//   --serve JOBS         persistent serve loop: read job lines from the
//                        JOBS file ("-" = stdin), execute each as it
//                        arrives, stream one CSV row per job (implies
//                        --csv; rows are flushed for pipeline consumers)
//   --annealer this-work|this-work-ideal|cim-fpga|cim-asic|mesa
//   --algorithm A        solver dynamics: insitu (Metropolis-style annealing,
//                        the --annealer kinds) or sb-ballistic/sb-discrete
//                        (simulated bifurcation on the same analog
//                        crossbar; --iterations then counts SB steps, each
//                        costing one field readout per spin)       [insitu]
//   --init random|greedy warm start: greedy = the family's constructive
//                        heuristic (greedy cut for maxcut, DSatur for
//                        coloring) seeds every run              [random]
//   --sb-dt X            SB integrator time step               [0.5]
//   --sb-a0 X            SB final pump amplitude               [1.0]
//   --sb-c0 X            SB coupling strength (0 = auto-calibrated
//                        0.5 / (sigma sqrt(n)))                [0]
//   --iterations N       annealing iterations per run        [auto by family]
//   --runs N             independent Monte-Carlo runs (>= 1) [10]
//   --threads N          parallel replica workers (0 = all cores)  [0]
//   --workers N          fork-spawned worker processes sharding the
//                        campaign (docs/sharding.md); >= 1, capped with a
//                        warning at the hardware thread count; bit-identical
//                        to the default in-process pool.  On platforms
//                        without fork the in-process pool is used and the
//                        reason printed to stderr          [in-process]
//   --flips N            spins flipped per iteration (|F|)   [2]
//   --gain X             acceptance comparator gain          [auto by family]
//   --bits N             weight quantization bits            [8]
//   --tile-rows N        max physical rows per crossbar tile
//                        (0 = monolithic array)              [0]
//   --tile-cols N        max physical columns per tile       [0]
//   --seed N             instance/run base seed              [1]
//   --csv                emit CSV rows instead of the report
// run lifecycle (docs/robustness.md):
//   --success-threshold T success = within (1-T) of reference, T in (0,1] [0.9]
//   --run-timeout S      per-run wall-clock deadline in seconds (0 = none);
//                        an expired run is recorded timed-out   [0]
//   --time-limit S       campaign wall-clock limit in seconds (0 = none);
//                        runs past it are recorded cancelled    [0]
//   --retries N          extra attempts for a failed run, reseeded
//                        deterministically via (seed, attempt)  [0]
//   --journal PATH       append-only per-run checkpoint journal
//   --resume             skip runs already in --journal (bit-identical
//                        campaign result)
//   --inject-fail LIST   test hook: comma-separated run indices that throw
//   --inject-hang LIST   test hook: run indices whose deadline pre-expires
//   --inject-kill-worker LIST  test hook: worker indices that die abruptly
//                        after their first streamed record (requires
//                        --workers)
// family-specific (generated instances only):
//   --nodes N            maxcut/coloring graph size, qubo variables
//                        [800 / 16 / 64]
//   --degree X           coloring/qubo average degree        [2.5 / 8]
//   --colors K           coloring palette (0 = greedy bound) [0]
//   --items N            knapsack item count                 [12]
//   --capacity W         knapsack capacity (0 = 40 % of total weight) [0]
//   --numbers N          partition set size                  [24]
//   --cities N           tsp city count                      [6]
//   --penalty A          constraint penalty; 0 = auto-tune for knapsack
//                        (max value + 1) and tsp (n * max distance),
//                        fixed default 2 for coloring        [0]
//
// Malformed numeric flags and malformed instance files exit 2/1 with a
// diagnostic (file errors name the offending line) instead of silently
// parsing to zero or dying on a contract check.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/annealer_factory.hpp"
#include "core/runner.hpp"
#include "core/shard_runner.hpp"
#include "crossbar/array_cache.hpp"
#include "problems/generators.hpp"
#include "problems/gset_io.hpp"
#include "problems/instance_io.hpp"
#include "problems/instances.hpp"
#include "problems/qubo.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace fecim;

namespace {

struct Options {
  std::string file;
  std::string batch;
  std::string serve;  ///< jobs file for the serve loop, "-" = stdin
  std::string problem = "maxcut";
  std::string annealer = "this-work";
  std::string algorithm = "insitu";  ///< insitu | sb-ballistic | sb-discrete
  std::string init = "random";       ///< random | greedy warm start
  double sb_dt = 0.5;   ///< SB integrator time step
  double sb_a0 = 1.0;   ///< SB final pump amplitude
  double sb_c0 = 0.0;   ///< SB coupling strength, 0 = auto 0.5/(sigma sqrt(n))
  std::size_t iterations = 0;  // 0 = auto
  std::size_t runs = 10;
  std::size_t threads = 0;  // 0 = util::worker_threads()
  std::size_t workers = 0;  // 0 = in-process pool; >= 1 = forked shards
  std::size_t flips = 2;
  double gain = 0.0;  // 0 = auto (16 unconstrained, 4 constrained)
  int bits = 8;
  std::size_t tile_rows = 0;  // 0 = monolithic
  std::size_t tile_cols = 0;
  std::uint64_t seed = 1;
  bool csv = false;
  // Run lifecycle (docs/robustness.md).
  double success_threshold = 0.9;
  double run_timeout = 0.0;  // seconds, 0 = none
  double time_limit = 0.0;   // seconds, 0 = none
  std::size_t retries = 0;
  std::string journal;
  bool resume = false;
  std::vector<std::size_t> inject_fail;
  std::vector<std::size_t> inject_hang;
  std::vector<std::size_t> inject_kill_worker;
  // Family-specific instance knobs.
  std::size_t nodes = 0;  // 0 = family default
  double degree = 0.0;    // 0 = family default (2.5 coloring, 8 qubo)
  std::size_t colors = 0;  // 0 = greedy palette
  std::size_t items = 12;
  double capacity = 0.0;  // 0 = auto
  std::size_t numbers = 24;
  std::size_t cities = 6;
  double penalty = 0.0;  // 0 = auto
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [instance-file]\n"
      "  --problem F       maxcut|coloring|knapsack|partition|tsp|qubo"
      " [maxcut]\n"
      "  --file PATH       load the instance from a file (any family)\n"
      "  --batch MANIFEST  run every '<family> <path> [name] [--flag value"
      " ...]' manifest line\n"
      "  --serve JOBS      persistent serve loop over the same job grammar"
      " ('-' = stdin; implies --csv)\n"
      "  --annealer KIND   this-work | this-work-ideal | cim-fpga | cim-asic"
      " | mesa\n"
      "  --algorithm A     insitu | sb-ballistic | sb-discrete [insitu]\n"
      "  --init MODE       random | greedy (constructive warm start)"
      " [random]\n"
      "  --sb-dt X  --sb-a0 X  --sb-c0 X   SB integrator knobs"
      " (c0 0 = auto)\n"
      "  --iterations N  --runs N  --threads N  --workers N  --flips N\n"
      "  --gain X  --bits N  --tile-rows N  --tile-cols N  --seed N  --csv\n"
      "run lifecycle: --success-threshold T --run-timeout S --time-limit S\n"
      "  --retries N --journal PATH --resume --inject-fail L --inject-hang L\n"
      "  --inject-kill-worker L\n"
      "family-specific: --nodes N --degree X --colors K --items N\n"
      "  --capacity W --numbers N --cities N --penalty A\n",
      argv0);
  std::exit(2);
}

/// Reject the strtoull-parses-garbage-to-0 failure mode: the whole token
/// must be a base-10 non-negative integer.  The value-level cores return
/// false instead of dying so both diagnostic styles -- exit(2) naming the
/// flag on the command line, a thrown line-numbered contract_error inside
/// a job line -- share one grammar.
bool parse_size_value(const char* text, std::size_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value =
      (*text != '\0' && *text != '-' && *text != '+')
          ? std::strtoull(text, &end, 10)
          : 0;
  if (end == nullptr || end == text || *end != '\0' || errno == ERANGE)
    return false;
  out = static_cast<std::size_t>(value);
  return true;
}

/// Reject non-numeric text (end-pointer check), 'nan'/'inf' (a NaN capacity
/// would sail past every range check downstream -- NaN compares false --
/// into undefined casts), and out-of-range magnitudes: every double flag
/// has a physically sensible [lo, hi] window, and a value outside it is a
/// typo that deserves a diagnostic naming the flag, not a silent campaign
/// with an absurd penalty.
bool parse_double_value(const char* text, double lo, double hi, double& out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value) || value < lo || value > hi)
    return false;
  out = value;
  return true;
}

std::string double_window(double lo, double hi) {
  char buffer[80];
  std::snprintf(buffer, sizeof buffer, "a finite number in [%g, %g]", lo, hi);
  return buffer;
}

std::size_t parse_size(const char* flag, const char* text) {
  std::size_t value = 0;
  if (!parse_size_value(text, value)) {
    std::fprintf(stderr,
                 "fecim_solve: invalid value '%s' for %s "
                 "(expected a non-negative integer)\n",
                 text, flag);
    std::exit(2);
  }
  return value;
}

bool is_known_annealer(const std::string& name) {
  return name == "this-work" || name == "this-work-ideal" ||
         name == "cim-fpga" || name == "cim-asic" || name == "mesa";
}

/// The per-campaign flags shared by the command line, --batch manifests,
/// and --serve job lines (one table, so a flag added here works in all
/// three).  `next()` yields the flag's value token exactly once when the
/// flag matches; `fail(flag, text, expected)` reports a malformed value in
/// whatever style the caller owes its user (exit(2) or a line-numbered
/// throw) and does not return.  Returns false for flags outside the table
/// (mode selectors, lifecycle test hooks) so the caller can layer its own.
template <typename GetValue, typename Fail>
bool apply_value_flag(Options& options, const std::string& flag,
                      const GetValue& next, const Fail& fail) {
  auto size_arg = [&]() {
    const char* text = next();
    std::size_t value = 0;
    if (!parse_size_value(text, value))
      fail(flag, text, "a non-negative integer");
    return value;
  };
  auto double_arg = [&](double lo, double hi) {
    const char* text = next();
    double value = 0.0;
    if (!parse_double_value(text, lo, hi, value))
      fail(flag, text, double_window(lo, hi));
    return value;
  };
  if (flag == "--annealer") {
    const char* text = next();
    if (!is_known_annealer(text))
      fail(flag, text, "this-work|this-work-ideal|cim-fpga|cim-asic|mesa");
    options.annealer = text;
  }
  else if (flag == "--algorithm") {
    const char* text = next();
    const std::string value(text);
    if (value != "insitu" && value != "sb-ballistic" &&
        value != "sb-discrete")
      fail(flag, text, "insitu|sb-ballistic|sb-discrete");
    options.algorithm = value;
  }
  else if (flag == "--init") {
    const char* text = next();
    const std::string value(text);
    if (value != "random" && value != "greedy")
      fail(flag, text, "random|greedy");
    options.init = value;
  }
  else if (flag == "--sb-dt") options.sb_dt = double_arg(1e-6, 1e3);
  else if (flag == "--sb-a0") options.sb_a0 = double_arg(1e-6, 1e6);
  else if (flag == "--sb-c0") options.sb_c0 = double_arg(0.0, 1e9);
  else if (flag == "--iterations") options.iterations = size_arg();
  else if (flag == "--runs") options.runs = size_arg();
  else if (flag == "--threads") options.threads = size_arg();
  else if (flag == "--workers") {
    // Unlike --threads there is no "0 = auto" meaning: 0 workers IS the
    // default in-process pool, so an explicit --workers 0 is a confused
    // request that deserves a diagnostic, not a silent no-op.
    const char* text = next();
    std::size_t value = 0;
    if (!parse_size_value(text, value) || value == 0)
      fail(flag, text, "a positive integer");
    options.workers = value;
  }
  else if (flag == "--flips") options.flips = size_arg();
  else if (flag == "--gain") options.gain = double_arg(0.0, 1e6);
  else if (flag == "--bits") options.bits = static_cast<int>(size_arg());
  else if (flag == "--tile-rows") options.tile_rows = size_arg();
  else if (flag == "--tile-cols") options.tile_cols = size_arg();
  else if (flag == "--seed") options.seed = size_arg();
  else if (flag == "--success-threshold")
    options.success_threshold = double_arg(1e-9, 1.0);
  else if (flag == "--run-timeout")
    options.run_timeout = double_arg(0.0, 1e9);
  else if (flag == "--time-limit")
    options.time_limit = double_arg(0.0, 1e9);
  else if (flag == "--retries") options.retries = size_arg();
  else if (flag == "--nodes") options.nodes = size_arg();
  else if (flag == "--degree") options.degree = double_arg(0.0, 1e6);
  else if (flag == "--colors") options.colors = size_arg();
  else if (flag == "--items") options.items = size_arg();
  else if (flag == "--capacity") options.capacity = double_arg(0.0, 1e15);
  else if (flag == "--numbers") options.numbers = size_arg();
  else if (flag == "--cities") options.cities = size_arg();
  else if (flag == "--penalty") options.penalty = double_arg(0.0, 1e12);
  else return false;
  return true;
}

/// Comma-separated non-negative run indices, e.g. "0,2,5".
std::vector<std::size_t> parse_run_list(const char* flag, const char* text) {
  std::vector<std::size_t> runs;
  const std::string list(text);
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = list.find(',', pos);
    const std::string token =
        list.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    runs.push_back(parse_size(flag, token.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return runs;
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fecim_solve: missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto cli_fail = [](const std::string& flag, const char* text,
                       const std::string& expected) {
      std::fprintf(stderr,
                   "fecim_solve: invalid value '%s' for %s (expected %s)\n",
                   text, flag.c_str(), expected.c_str());
      std::exit(2);
    };
    // Shared per-campaign flags first (one table with --batch/--serve job
    // overrides), then the CLI-only mode selectors and lifecycle hooks.
    if (apply_value_flag(options, arg, [&] { return next(arg.c_str()); },
                         cli_fail)) continue;
    if (arg == "--problem") options.problem = next("--problem");
    else if (arg == "--file") options.file = next("--file");
    else if (arg == "--batch") options.batch = next("--batch");
    else if (arg == "--serve") options.serve = next("--serve");
    else if (arg == "--csv") options.csv = true;
    else if (arg == "--journal") options.journal = next("--journal");
    else if (arg == "--resume") options.resume = true;
    else if (arg == "--inject-fail")
      options.inject_fail = parse_run_list("--inject-fail",
                                           next("--inject-fail"));
    else if (arg == "--inject-hang")
      options.inject_hang = parse_run_list("--inject-hang",
                                           next("--inject-hang"));
    else if (arg == "--inject-kill-worker")
      options.inject_kill_worker = parse_run_list(
          "--inject-kill-worker", next("--inject-kill-worker"));
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else options.file = arg;
  }
  if (options.runs == 0) {
    // 0 runs would divide 0/0 into feasible_rate and report a campaign that
    // never ran; fail loudly instead.
    std::fprintf(stderr, "fecim_solve: --runs must be at least 1\n");
    std::exit(2);
  }
  if (options.flips == 0) {
    std::fprintf(stderr, "fecim_solve: --flips must be at least 1\n");
    std::exit(2);
  }
  if ((!options.batch.empty()) + (!options.serve.empty()) +
          (!options.file.empty()) >
      1) {
    std::fprintf(stderr,
                 "fecim_solve: --batch, --serve and --file are mutually "
                 "exclusive\n");
    std::exit(2);
  }
  if (options.resume && options.journal.empty()) {
    std::fprintf(stderr, "fecim_solve: --resume requires --journal\n");
    std::exit(2);
  }
  // The serve loop streams rows to pipeline consumers; the human-readable
  // report is meaningless mid-stream, so --serve always emits CSV.
  if (!options.serve.empty()) options.csv = true;
  if ((!options.batch.empty() || !options.serve.empty()) &&
      (!options.journal.empty() || !options.inject_fail.empty() ||
       !options.inject_hang.empty() || !options.inject_kill_worker.empty())) {
    // A journal checkpoints one campaign and injection indexes one
    // campaign's runs; neither is meaningful across a manifest of
    // campaigns.
    std::fprintf(stderr,
                 "fecim_solve: --journal/--inject-* do not combine with "
                 "--batch/--serve\n");
    std::exit(2);
  }
  for (const auto run : options.inject_fail)
    if (run >= options.runs) {
      std::fprintf(stderr,
                   "fecim_solve: --inject-fail index %zu out of range "
                   "(runs = %zu)\n", run, options.runs);
      std::exit(2);
    }
  for (const auto run : options.inject_hang)
    if (run >= options.runs) {
      std::fprintf(stderr,
                   "fecim_solve: --inject-hang index %zu out of range "
                   "(runs = %zu)\n", run, options.runs);
      std::exit(2);
    }
  if (!options.inject_kill_worker.empty() && options.workers == 0) {
    std::fprintf(stderr,
                 "fecim_solve: --inject-kill-worker requires --workers\n");
    std::exit(2);
  }
  for (const auto worker : options.inject_kill_worker)
    if (worker >= options.workers) {
      std::fprintf(stderr,
                   "fecim_solve: --inject-kill-worker index %zu out of range "
                   "(workers = %zu)\n", worker, options.workers);
      std::exit(2);
    }
  return options;
}

bool is_known_family(const std::string& family) {
  return family == "maxcut" || family == "coloring" ||
         family == "knapsack" || family == "partition" || family == "tsp" ||
         family == "qubo";
}

core::AnnealerKind kind_from_name(const std::string& name) {
  if (name == "this-work") return core::AnnealerKind::kThisWork;
  if (name == "this-work-ideal") return core::AnnealerKind::kThisWorkIdeal;
  if (name == "cim-fpga") return core::AnnealerKind::kCimFpga;
  if (name == "cim-asic") return core::AnnealerKind::kCimAsic;
  if (name == "mesa") return core::AnnealerKind::kMesa;
  std::fprintf(stderr, "unknown annealer '%s'\n", name.c_str());
  std::exit(2);
}

/// Build one family's instance, from `file` when given (any family) or the
/// seeded generators otherwise.
core::ProblemInstance make_family_problem(const std::string& family,
                                          const std::string& file,
                                          const std::string& name,
                                          const Options& options) {
  const auto seed = options.seed;
  const std::string instance_name = !name.empty() ? name : file;
  if (family == "maxcut") {
    const std::size_t nodes = options.nodes > 0 ? options.nodes : 800;
    problems::Graph graph =
        file.empty() ? problems::gset_like_instance(nodes, seed)
                     : problems::read_gset_file(file);
    return problems::make_maxcut_problem(
        instance_name.empty() ? "generated-" + std::to_string(nodes)
                              : instance_name,
        std::move(graph), 48, seed);
  }
  if (family == "coloring") {
    const std::size_t nodes = options.nodes > 0 ? options.nodes : 16;
    const double degree = options.degree > 0.0 ? options.degree : 2.5;
    problems::Graph graph =
        file.empty()
            ? problems::random_graph(nodes, degree,
                                     problems::WeightScheme::kUnit, seed)
            : problems::read_dimacs_coloring_file(file);
    return problems::make_coloring_problem(
        instance_name.empty() ? "coloring-" + std::to_string(nodes)
                              : instance_name,
        std::move(graph), options.colors,
        options.penalty > 0.0 ? options.penalty : 2.0);
  }
  if (family == "knapsack") {
    auto instance =
        file.empty()
            ? problems::random_knapsack(options.items, seed, options.capacity)
            : problems::read_knapsack_file(file);
    return problems::make_knapsack_problem(
        instance_name.empty() ? "knapsack-" + std::to_string(options.items)
                              : instance_name,
        std::move(instance), options.penalty);
  }
  if (family == "partition") {
    auto numbers =
        file.empty()
            ? problems::random_partition_numbers(options.numbers, seed)
            : problems::read_partition_file(file);
    return problems::make_partition_problem(
        instance_name.empty() ? "partition-" + std::to_string(options.numbers)
                              : instance_name,
        std::move(numbers));
  }
  if (family == "tsp") {
    auto instance = file.empty() ? problems::random_tsp(options.cities, seed)
                                 : problems::read_tsp_file(file);
    return problems::make_tsp_problem(
        instance_name.empty() ? "tsp-" + std::to_string(options.cities)
                              : instance_name,
        std::move(instance), options.penalty);
  }
  if (family == "qubo") {
    const std::size_t nodes = options.nodes > 0 ? options.nodes : 64;
    const double degree = options.degree > 0.0 ? options.degree : 8.0;
    auto instance = file.empty() ? problems::random_qubo(nodes, degree, seed)
                                 : problems::read_qubo_file(file);
    return problems::make_qubo_problem(
        instance_name.empty() ? "qubo-" + std::to_string(nodes)
                              : instance_name,
        std::move(instance), 24, seed);
  }
  std::fprintf(stderr, "unknown problem '%s'\n", family.c_str());
  std::exit(2);
}

std::size_t auto_iterations(const std::string& family,
                            std::size_t num_spins) {
  // Constraint-encoded families (one-hot / slack penalties) need a longer
  // budget than the paper's Max-Cut size classes at equal spin count.
  if (family == "coloring" || family == "tsp") return 20000;
  if (family == "knapsack") return 30000;
  // The paper's Max-Cut budgets by size class (partition and generic QUBO
  // ride along).
  if (num_spins <= 800) return 700;
  if (num_spins <= 1000) return 1000;
  if (num_spins <= 2000) return 10000;
  return 100000;
}

/// SB budgets count steps, and one SB step performs a full field readout
/// (one ADC-sensed evaluation per spin) -- roughly n in-situ iterations of
/// hardware work -- so the auto budget is two orders of magnitude smaller.
std::size_t auto_sb_steps(const std::string& family) {
  if (family == "coloring" || family == "tsp" || family == "knapsack")
    return 400;
  return 200;
}

struct SolveOutcome {
  core::CampaignResult result;
  core::StandardSetup setup;
  core::AnnealerKind kind = core::AnnealerKind::kThisWork;
  std::size_t threads = 0;  ///< resolved worker count
};

SolveOutcome solve(const core::ProblemInstance& problem,
                   const Options& options,
                   const std::shared_ptr<crossbar::ArrayCache>& cache =
                       nullptr) {
  const bool constrained =
      problem.family == "coloring" || problem.family == "knapsack" ||
      problem.family == "tsp";

  const bool sb = options.algorithm != "insitu";

  SolveOutcome outcome;
  outcome.setup.iterations =
      options.iterations > 0
          ? options.iterations
          : (sb ? auto_sb_steps(problem.family)
                : auto_iterations(problem.family,
                                  problem.model->num_spins()));
  outcome.setup.flips_per_iteration = options.flips;
  // Constraint landscapes prefer a softer comparator and tighter
  // program-verify variation so penalty weights survive programming (see
  // docs/problems.md).
  outcome.setup.acceptance_gain =
      options.gain > 0.0 ? options.gain : (constrained ? 4.0 : 16.0);
  if (constrained) outcome.setup.variation = {0.01, 0.02, 0.0, 0.0};
  outcome.setup.bits = options.bits;
  // Tile-partitioned execution: bound the physical tile (0 = monolithic);
  // the engines sweep the tile grid and accumulate partial sums digitally.
  outcome.setup.tiles = crossbar::TileShape{options.tile_rows,
                                            options.tile_cols};
  // Multi-job modes share one digest-keyed programmed-array cache: jobs
  // with identical array-defining inputs reuse one ProgrammedArray.
  outcome.setup.array_cache = cache;
  outcome.setup.sb_dt = options.sb_dt;
  outcome.setup.sb_a0 = options.sb_a0;
  outcome.setup.sb_c0 = options.sb_c0;
  if (options.init == "greedy") {
    if (!problem.warm_start)
      throw contract_error("--init greedy: no constructive warm start for "
                           "family '" + problem.family + "'");
    outcome.setup.initial_spins =
        std::make_shared<const ising::SpinVector>(problem.warm_start());
  }

  // --algorithm selects the solver dynamics; --annealer picks the engine
  // flavor within the in-situ family (SB always drives the analog array).
  outcome.kind = options.algorithm == "sb-ballistic"
                     ? core::AnnealerKind::kSbBallistic
                 : options.algorithm == "sb-discrete"
                     ? core::AnnealerKind::kSbDiscrete
                     : kind_from_name(options.annealer);
  const auto annealer =
      core::make_annealer(outcome.kind, problem.model, outcome.setup);

  core::CampaignConfig campaign;
  campaign.runs = options.runs;
  campaign.base_seed = options.seed;
  campaign.success_threshold = options.success_threshold;
  campaign.threads = options.threads;
  campaign.run_timeout_seconds = options.run_timeout;
  campaign.time_limit_seconds = options.time_limit;
  campaign.retries = options.retries;
  campaign.journal_path = options.journal;
  campaign.resume = options.resume;
  campaign.inject.fail_runs = options.inject_fail;
  campaign.inject.hang_runs = options.inject_hang;

  // Multi-process sharding (docs/sharding.md).  Oversubscribing processes
  // buys nothing -- each forked worker executes its shard serially -- so
  // cap at the hardware thread count with a warning; on platforms without
  // fork, degrade to the (bit-identical) in-process pool and say why.
  std::size_t workers = options.workers;
  if (workers > 0) {
    const std::size_t hardware = util::worker_threads();
    if (workers > hardware) {
      std::fprintf(stderr,
                   "fecim_solve: --workers %zu exceeds the hardware thread "
                   "count; capping at %zu\n", workers, hardware);
      workers = hardware;
    }
    if (!core::shard_runner_supported()) {
      std::fprintf(stderr,
                   "fecim_solve: --workers %zu: this platform cannot fork "
                   "worker processes; using the in-process pool "
                   "(bit-identical result)\n", workers);
      workers = 0;
    }
  }
  campaign.workers = workers;
  if (workers > 0) {
    campaign.inject.kill_workers = options.inject_kill_worker;
    for (auto& worker : campaign.inject.kill_workers)
      worker = std::min(worker, workers - 1);
  }
  outcome.result = core::run_campaign(*annealer, problem, campaign);
  // Report the resolved worker count (threads=0 means "all cores"), never
  // the raw config value.
  outcome.threads =
      util::resolved_parallel_threads(options.runs, options.threads);
  return outcome;
}

/// best_objective is NaN with zero feasible runs; mirror that for the mean
/// so the CSV never shows a literal 0 that would read as a perfect
/// imbalance or an empty packing.
double safe_mean_objective(const core::CampaignResult& result) {
  return result.objective.empty()
             ? std::numeric_limits<double>::quiet_NaN()
             : result.objective.mean();
}

void print_csv_header() {
  std::printf(
      "instance,family,annealer,algorithm,runs,iterations,threads,"
      "best_objective,mean_objective,reference,completed_rate,feasible_rate,"
      "success_rate,energy_j,time_s,status\n");
}

void print_csv_row(const core::ProblemInstance& problem,
                   const SolveOutcome& outcome, const Options& options) {
  const auto& result = outcome.result;
  std::printf(
      "%s,%s,%s,%s,%zu,%zu,%zu,%.6g,%.6g,%.6g,%.3f,%.3f,%.3f,%.6g,%.6g,ok\n",
      problem.name.c_str(), problem.family.c_str(),
      options.annealer.c_str(), options.algorithm.c_str(), options.runs,
      outcome.setup.iterations, outcome.threads,
      result.best_objective(problem.sense),
      safe_mean_objective(result), problem.reference_objective,
      result.completed_rate, result.feasible_rate, result.success_rate,
      result.energy.mean(), result.time.mean());
}


void print_report(const core::ProblemInstance& problem,
                  const SolveOutcome& outcome, const Options& options) {
  const auto& result = outcome.result;
  const double best = result.best_objective(problem.sense);
  std::printf("instance   : %s [%s] (%s; %zu spins)\n", problem.name.c_str(),
              problem.family.c_str(), problem.summary.c_str(),
              problem.model->num_spins());
  std::printf("annealer   : %s, %zu iterations x %zu runs (%zu threads), "
              "|F|=%zu, gain=%.1f, k=%d bits\n",
              core::annealer_kind_name(outcome.kind),
              outcome.setup.iterations, options.runs, outcome.threads,
              options.flips, outcome.setup.acceptance_gain, options.bits);
  std::printf("algorithm  : %s dynamics, %s initialization\n",
              options.algorithm.c_str(), options.init.c_str());
  if (result.objective.empty()) {
    std::printf("%-11s: no feasible run (mean violations %.1f)\n",
                problem.objective_label.c_str(), result.violations.mean());
  } else {
    std::printf("%-11s: best %.6g / mean %.6g / reference %.6g (%s)\n",
                problem.objective_label.c_str(), best,
                result.objective.mean(), problem.reference_objective,
                core::objective_sense_name(problem.sense));
  }
  if (result.completed_rate < 1.0) {
    std::size_t failed = 0;
    std::size_t timed_out = 0;
    std::size_t cancelled = 0;
    for (const auto& record : result.per_run) {
      failed += record.status == core::RunStatus::kFailed;
      timed_out += record.status == core::RunStatus::kTimedOut;
      cancelled += record.status == core::RunStatus::kCancelled;
    }
    std::printf("completed  : %.0f %% of runs (%zu failed, %zu timed out, "
                "%zu cancelled); statistics cover completed runs only\n",
                result.completed_rate * 100.0, failed, timed_out, cancelled);
  }
  std::printf("feasible   : %.0f %% of runs satisfied every constraint\n",
              result.feasible_rate * 100.0);
  std::printf("success    : %.0f %% of runs within %.0f %% of reference\n",
              result.success_rate * 100.0,
              (1.0 - options.success_threshold) * 100.0);
  std::printf("hw cost    : %s, %s per run (mean)\n",
              util::si_format(result.energy.mean(), "J").c_str(),
              util::si_format(result.time.mean(), "s").c_str());
  std::printf("adc events : %llu conversions total across runs\n",
              static_cast<unsigned long long>(
                  result.total_ledger.adc_conversions));
  if (!outcome.setup.tiles.monolithic()) {
    const auto bands = crossbar::plan_row_bands(
        problem.model->num_spins(), outcome.setup.tiles.rows);
    std::printf("tiling     : tile caps %zu rows x %zu cols (0 = unbounded), "
                "%zu row bands, %llu tile activations, "
                "%llu partial-sum merges\n",
                outcome.setup.tiles.rows, outcome.setup.tiles.cols,
                bands.size(),
                static_cast<unsigned long long>(
                    result.total_ledger.tile_activations),
                static_cast<unsigned long long>(
                    result.total_ledger.partial_sum_updates));
  }
}

// ---------------------------------------------------------------------------
// Job grammar shared by --batch and --serve (docs/serving.md):
//     <family> <path> [name] [--flag value ...]
// ---------------------------------------------------------------------------

struct Job {
  std::string family;
  std::string path;  ///< empty = generate from the (per-job) seed
  std::string name;
  Options options;  ///< process options + per-job overrides
};

/// Parse the current manifest/serve line into a Job.  Every malformed piece
/// -- unknown family, stray token, unknown or malformed override -- throws
/// a contract_error naming "<context>:<line>" via the parser.
Job parse_job_line(const problems::io::LineParser& parser,
                   const Options& base,
                   const std::filesystem::path& base_dir) {
  if (parser.fields() < 2)
    parser.fail("expected '<family> <path> [name] [--flag value ...]'");
  Job job;
  job.options = base;
  job.family = std::string(parser.field(0));
  // Validate at parse time: a typo'd family must fail with the offending
  // line before any campaign runs, not mid-batch after real work.
  if (!is_known_family(job.family))
    parser.fail("unknown problem family '" + job.family + "'");
  if (parser.field(1) != "-") {
    // Paths resolve relative to the manifest's own directory ("-" keeps
    // the generated-instance path, parameterized by the job's seed/knobs).
    std::filesystem::path file{std::string(parser.field(1))};
    if (file.is_relative()) file = base_dir / file;
    job.path = file.string();
  }
  std::size_t i = 2;
  if (i < parser.fields() && parser.field(i).substr(0, 2) != "--")
    job.name = std::string(parser.field(i++));
  while (i < parser.fields()) {
    const std::string flag(parser.field(i));
    if (flag.substr(0, 2) != "--")
      parser.fail("expected a --flag override, got '" + flag + "'");
    if (i + 1 >= parser.fields()) parser.fail("missing value for " + flag);
    const std::string value(parser.field(i + 1));
    auto job_fail = [&](const std::string& f, const char* text,
                        const std::string& expected) {
      parser.fail("invalid value '" + std::string(text) + "' for " + f +
                  " (expected " + expected + ")");
    };
    if (!apply_value_flag(job.options, flag, [&] { return value.c_str(); },
                          job_fail))
      parser.fail("unknown per-job flag '" + flag + "'");
    i += 2;
  }
  if (job.options.runs == 0) parser.fail("--runs must be at least 1");
  if (job.options.flips == 0) parser.fail("--flips must be at least 1");
  return job;
}

/// Manifest mode reads every job up front: a malformed line kills the batch
/// before any campaign runs (atomic validation), unlike the serve loop
/// which isolates line errors to keep the stream alive.
std::vector<Job> read_batch_manifest(const std::string& path,
                                     const Options& base) {
  return problems::io::read_file(
      path, "batch", [&base](auto&& in, const std::string& context) {
        problems::io::LineParser parser(in, context);
        const auto base_dir = std::filesystem::path(context).parent_path();
        std::vector<Job> jobs;
        while (parser.next())
          jobs.push_back(parse_job_line(parser, base, base_dir));
        if (jobs.empty())
          throw contract_error("batch: " + context + " lists no instances");
        return jobs;
      });
}

/// Isolation row for a job whose campaign could not run at all (malformed
/// file, infeasible encode): every result column is NaN/0 and the status
/// column says why the row carries no numbers.
void print_csv_failed_row(const std::string& display,
                          const std::string& family,
                          const Options& options) {
  std::printf("%s,%s,%s,%s,%zu,0,0,nan,nan,nan,0.000,0.000,0.000,nan,nan,"
              "failed\n",
              display.c_str(), family.c_str(), options.annealer.c_str(),
              options.algorithm.c_str(), options.runs);
}

/// Final cache report for the multi-job modes.  "N built" is the count of
/// actual array programmings -- the duplicate-manifest smoke in
/// tools/check.sh asserts on it.
void print_cache_stats(const crossbar::ArrayCache& cache) {
  const auto stats = cache.stats();
  std::fprintf(stderr,
               "fecim_solve: array cache: %zu built, %zu hits, "
               "%zu evictions, %zu resident (%.1f MiB), %.3f s programming\n",
               stats.misses, stats.hits, stats.evictions, stats.entries,
               static_cast<double>(stats.bytes) / (1024.0 * 1024.0),
               stats.build_seconds);
}

int run_batch(const Options& options) {
  const auto jobs = read_batch_manifest(options.batch, options);
  // All campaigns in the batch share the process-wide persistent worker
  // pool (util::parallel_for) and one programmed-array cache, so thread
  // spawn and array programming costs are paid per distinct input, not per
  // manifest line.
  const auto cache = std::make_shared<crossbar::ArrayCache>();
  if (options.csv) print_csv_header();
  util::Table table({"instance", "family", "spins", "best", "mean",
                     "reference", "feas%", "succ%", "time/run", "status"});
  std::size_t failed_jobs = 0;
  for (const auto& job : jobs) {
    try {
      const auto problem =
          make_family_problem(job.family, job.path, job.name, job.options);
      const auto outcome = solve(problem, job.options, cache);
      if (options.csv) {
        print_csv_row(problem, outcome, job.options);
        continue;
      }
      table.row()
          .add(problem.name)
          .add(problem.family)
          .add(problem.model->num_spins())
          .add(outcome.result.best_objective(problem.sense), 4)
          .add(safe_mean_objective(outcome.result), 4)
          .add(problem.reference_objective, 4)
          .add(outcome.result.feasible_rate * 100.0, 0)
          .add(outcome.result.success_rate * 100.0, 0)
          .add(outcome.result.time.mean(), 6)
          .add("ok");
    } catch (const std::exception& error) {
      // Batch isolation: one malformed instance is a failed row plus a
      // stderr diagnostic, not a dead batch -- the remaining instances
      // still run, and the final exit code reports the damage.
      ++failed_jobs;
      const std::string display = !job.name.empty() ? job.name : job.path;
      std::fprintf(stderr, "fecim_solve: %s [%s]: %s\n", display.c_str(),
                   job.family.c_str(), error.what());
      if (options.csv) {
        print_csv_failed_row(display, job.family, job.options);
        continue;
      }
      table.row()
          .add(display)
          .add(job.family)
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("failed");
    }
  }
  if (!options.csv) {
    std::printf("batch      : %zu instances from %s\n", jobs.size(),
                options.batch.c_str());
    std::printf("%s\n", table.str().c_str());
  }
  print_cache_stats(*cache);
  if (failed_jobs > 0) {
    std::fprintf(stderr, "fecim_solve: %zu of %zu batch instances failed\n",
                 failed_jobs, jobs.size());
    return 1;
  }
  return 0;
}

/// Persistent serve loop: jobs arrive one line at a time (stdin or a jobs
/// file), each executes immediately against the warm process -- live
/// thread pool, resident programmed-array cache -- and its CSV row is
/// flushed so a pipeline consumer sees results as they land.  A malformed
/// line or failed campaign yields a failed row and keeps serving.
int run_serve(const Options& options) {
  std::ifstream file_in;
  std::istream* in = &std::cin;
  std::string context = "serve";
  std::filesystem::path base_dir;  // stdin jobs resolve against the cwd
  if (options.serve != "-") {
    file_in.open(options.serve);
    if (!file_in) {
      std::fprintf(stderr, "fecim_solve: serve: cannot open %s\n",
                   options.serve.c_str());
      return 1;
    }
    in = &file_in;
    context = options.serve;
    base_dir = std::filesystem::path(options.serve).parent_path();
  }

  const auto cache = std::make_shared<crossbar::ArrayCache>();
  print_csv_header();
  std::fflush(stdout);

  problems::io::LineParser parser(*in, context);
  std::size_t jobs = 0;
  std::size_t failed_jobs = 0;
  while (parser.next()) {
    ++jobs;
    // Best-effort identity for the failure row, refined once the line
    // parses: a job that dies before parse_job_line returns still gets a
    // stream row naming whatever the line did say.
    std::string display(parser.field(0));
    std::string family = "-";
    if (parser.fields() >= 2) display = std::string(parser.field(1));
    try {
      const Job job = parse_job_line(parser, options, base_dir);
      family = job.family;
      if (!job.name.empty())
        display = job.name;
      else if (!job.path.empty())
        display = job.path;
      const auto problem =
          make_family_problem(job.family, job.path, job.name, job.options);
      const auto outcome = solve(problem, job.options, cache);
      print_csv_row(problem, outcome, job.options);
    } catch (const std::exception& error) {
      ++failed_jobs;
      std::fprintf(stderr, "fecim_solve: %s [%s]: %s\n", display.c_str(),
                   family.c_str(), error.what());
      std::fflush(stderr);
      print_csv_failed_row(display, family, options);
    }
    std::fflush(stdout);
  }
  print_cache_stats(*cache);
  if (failed_jobs > 0) {
    std::fprintf(stderr, "fecim_solve: %zu of %zu served jobs failed\n",
                 failed_jobs, jobs);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  try {
    if (!options.batch.empty()) return run_batch(options);
    if (!options.serve.empty()) return run_serve(options);

    const auto problem =
        make_family_problem(options.problem, options.file, "", options);
    const auto outcome = solve(problem, options);
    if (options.csv) {
      print_csv_header();
      print_csv_row(problem, outcome, options);
    } else {
      print_report(problem, outcome, options);
    }
    if (outcome.result.completed == 0) {
      // A campaign in which not a single run finished has no statistics to
      // stand on; degrade gracefully in the output but fail the process.
      std::fprintf(stderr, "fecim_solve: no run completed (%zu attempted)\n",
                   options.runs);
      return 1;
    }
  } catch (const contract_error& error) {
    // Parser and contract diagnostics (malformed files name the offending
    // line) exit cleanly instead of aborting through std::terminate.
    std::fprintf(stderr, "fecim_solve: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    // Anything else (allocation failure on an oversized instance,
    // filesystem errors) still deserves a diagnostic, not a raw terminate.
    std::fprintf(stderr, "fecim_solve: %s\n", error.what());
    return 1;
  }
  return 0;
}
